"""The pre-index router, kept as a verification and benchmark baseline.

This is the line-expansion search exactly as it ran before the
:class:`~repro.route.index.PlaneIndex` existed: a full
:class:`ReferenceSnapshot` of the plane is rebuilt per connection —
copying ``blocked | claims`` and re-scanning every ``usage`` point — and
the search is an undirected lexicographic Dijkstra.  It returns the same
optimum (bends, then crossings, then length, and the ``-s`` swap) as the
indexed A* in :mod:`repro.route.line_expansion`, just slower, which is
precisely what makes it useful:

* ``benchmarks/test_bench_route.py`` measures old path vs indexed path,
* ``RouterOptions(verify_optimum=True)`` cross-checks every connection's
  cost tuple against it,
* the property tests assert cost-tuple equality under both
  :class:`~repro.route.line_expansion.CostOrder` values.

The goal-acceptance rules (zero-length connections included) mirror the
production router so the two are cost-for-cost comparable.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping

from ..core.geometry import Direction, Orientation, Point, normalize_path
from .line_expansion import (
    _DIR_INDEX,
    _DIR_STEPS,
    _MISSING,
    _OPPOSITE,
    CostOrder,
    RouteResult,
    SearchStats,
    _unkey,
)
from .plane import Plane


class ReferenceSnapshot:
    """Flat per-net view of the plane, rebuilt from scratch.

    Built once per connection in O(blocked + claims + occupied points);
    this is the cost the incremental index amortises away.
    """

    __slots__ = (
        "x1",
        "y1",
        "x2",
        "y2",
        "hard",
        "foreign_any",
        "blocked_h",
        "blocked_v",
        "cross_h",
        "cross_v",
    )

    def __init__(
        self,
        plane: Plane,
        net: str,
        allow: frozenset[Point],
        extra_hard: frozenset[Point] = frozenset(),
    ) -> None:
        bounds = plane.bounds
        self.x1, self.y1 = bounds.x, bounds.y
        self.x2, self.y2 = bounds.x2, bounds.y2
        self.hard = ((set(plane.blocked) | set(plane.claims)) - allow) | set(
            extra_hard
        )
        # Points carrying any foreign wire (no turning/terminating there).
        self.foreign_any: set[tuple[int, int]] = set()
        # Points a wire moving horizontally/vertically may not enter.
        self.blocked_h: set[tuple[int, int]] = set()
        self.blocked_v: set[tuple[int, int]] = set()
        # Crossing counts per point for horizontal/vertical passage.
        self.cross_h: dict[tuple[int, int], int] = {}
        self.cross_v: dict[tuple[int, int], int] = {}
        horizontal = Orientation.HORIZONTAL
        vertical = Orientation.VERTICAL
        for point, nets in plane.usage.items():
            foreign = False
            for other, orientations in nets.items():
                if other == net:
                    continue
                foreign = True
                if point in plane.nodes.get(other, ()):  # bend/end/branch
                    self.blocked_h.add(point)
                    self.blocked_v.add(point)
                    continue
                if not orientations:  # degenerate single-point wire
                    self.blocked_h.add(point)
                    self.blocked_v.add(point)
                    continue
                if horizontal in orientations:
                    self.blocked_h.add(point)
                    self.cross_v[point] = self.cross_v.get(point, 0) + 1
                if vertical in orientations:
                    self.blocked_v.add(point)
                    self.cross_h[point] = self.cross_h.get(point, 0) + 1
            if foreign:
                self.foreign_any.add(point)


def route_connection_reference(
    plane: Plane,
    net: str,
    start: Point,
    start_directions: Iterable[Direction],
    targets: Mapping[Point, frozenset[Direction] | None] | Iterable[Point],
    *,
    allow: frozenset[Point] = frozenset(),
    extra_hard: frozenset[Point] = frozenset(),
    cost_order: CostOrder = CostOrder.BENDS_CROSSINGS_LENGTH,
    stats: SearchStats | None = None,
) -> RouteResult | None:
    """Drop-in, snapshot-rebuilding, undirected Dijkstra counterpart of
    :func:`repro.route.line_expansion.route_connection`."""
    if not isinstance(targets, Mapping):
        targets = {p: None for p in targets}
    if not targets:
        return None
    start_directions = list(start_directions)
    snap = ReferenceSnapshot(plane, net, allow, extra_hard)
    if start in targets:
        dirs = targets[start]
        if (
            dirs is None or any(d in dirs for d in start_directions)
        ) and start not in snap.foreign_any:
            return RouteResult(path=[start], bends=0, crossings=0, length=0)

    target_dirs: dict[tuple[int, int], frozenset[int] | None] = {}
    for p, dirs in targets.items():
        target_dirs[(p.x, p.y)] = (
            None if dirs is None else frozenset(_DIR_INDEX[d] for d in dirs)
        )

    crossings_first = cost_order is CostOrder.BENDS_CROSSINGS_LENGTH
    x1, y1, x2, y2 = snap.x1, snap.y1, snap.x2, snap.y2
    hard = snap.hard
    foreign_any = snap.foreign_any
    blocked = (snap.blocked_h, snap.blocked_v)
    crossings_at = (snap.cross_h, snap.cross_v)

    counter = 0
    heap: list = []
    best: dict[tuple[int, int, int], tuple[int, int, int]] = {}
    parents: dict[tuple[int, int, int], tuple[int, int, int] | None] = {}
    sx, sy = start.x, start.y
    zero = (0, 0, 0)
    for d in start_directions:
        state = (sx, sy, _DIR_INDEX[d])
        best[state] = zero
        parents[state] = None
        heapq.heappush(heap, (zero, counter, state))
        counter += 1

    expanded = 0
    goal_state = None
    goal_cost = None
    heappush, heappop = heapq.heappush, heapq.heappop

    while heap:
        cost, _, state = heappop(heap)
        if cost > best.get(state, cost):
            continue  # stale entry
        expanded += 1
        px, py, di = state

        point_key = (px, py)
        arrival_ok = target_dirs.get(point_key, _MISSING)
        if arrival_ok is not _MISSING and parents[state] is not None:
            if (arrival_ok is None or di in arrival_ok) and (
                point_key not in foreign_any
            ):
                goal_state, goal_cost = state, cost
                break

        can_turn = point_key not in foreign_any
        c0, c1, length = cost
        for ndi in range(4):
            if ndi == _OPPOSITE[di]:
                continue
            turning = ndi != di
            if turning and not can_turn:
                continue
            dx, dy, moves_h = _DIR_STEPS[ndi]
            qx, qy = px + dx, py + dy
            if not (x1 <= qx <= x2 and y1 <= qy <= y2):
                continue
            q = (qx, qy)
            if q in hard or q in blocked[0 if moves_h else 1]:
                continue
            cross = crossings_at[0 if moves_h else 1].get(q, 0)
            if crossings_first:
                ncost = (c0 + turning, c1 + cross, length + 1)
            else:
                ncost = (c0 + turning, c1 + 1, length + cross)
            nstate = (qx, qy, ndi)
            old = best.get(nstate)
            if old is None or ncost < old:
                best[nstate] = ncost
                parents[nstate] = state
                heappush(heap, (ncost, counter, nstate))
                counter += 1

    if stats is not None:
        stats.states_expanded += expanded
        stats.routes += 1
        if goal_state is None:
            stats.failures += 1
    if goal_state is None or goal_cost is None:
        return None

    path: list[Point] = []
    cursor = goal_state
    while cursor is not None:
        path.append(Point(cursor[0], cursor[1]))
        cursor = parents[cursor]
    path.reverse()
    bends, crossings, length = _unkey(goal_cost, cost_order)
    return RouteResult(
        path=normalize_path(path),
        bends=bends,
        crossings=crossings,
        length=length,
        states_expanded=expanded,
    )
