"""The routing plane: the obstacle model of section 5.6.2.

The plane knows, for every grid point, what would block or penalise a wire
passing through it:

* module borders and interiors block (``ADD_OBSTACLE_BOUNDINGS``),
* the plane border blocks (it is "treated as sides of modules"),
* system terminal positions block for foreign nets,
* previously routed net segments may be *crossed* perpendicularly
  (costing one crossover) but never overlapped, and their bend, end and
  branch points block entirely ("the only obstacles are modules and bends
  in nets"),
* claimpoints (section 5.7) block like modules until released.

Routers ask the plane three questions: can a wire *enter* a point moving
in a direction, can it *turn or terminate* there, and how many foreign
nets does it cross there.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ..core.diagram import Diagram
from ..core.geometry import (
    Direction,
    Orientation,
    Point,
    Rect,
    Side,
    normalize_path,
    path_points,
    path_segments,
)
from .index import IndexedPointSet, PlaneIndex

DEFAULT_MARGIN = 4


@dataclass
class Plane:
    """Mutable routing state over a bounded grid.

    Every mutation keeps the :class:`~repro.route.index.PlaneIndex` in
    ``self.index`` up to date, so routers get per-connection views of the
    obstacle field in O(own net) instead of rebuilding O(plane) snapshots.
    """

    bounds: Rect
    blocked: set[Point] = field(default_factory=set)
    claims: dict[Point, Hashable] = field(default_factory=dict)
    # point -> net name -> orientations of wire through the point
    usage: dict[Point, dict[str, set[Orientation]]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    # net name -> points where the net bends, ends or branches
    nodes: dict[str, set[Point]] = field(default_factory=lambda: defaultdict(set))
    index: PlaneIndex = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.index = PlaneIndex(self)
        # ``blocked`` is mutated directly by callers, so the notifying
        # container carries the index hook; pre-populated contents (the
        # dataclass allows passing them) are ingested here.
        self.blocked = IndexedPointSet(self.index, self.blocked)
        self._claims_by_owner: dict[Hashable, set[Point]] = {}
        for point, owner in self.claims.items():
            self._claims_by_owner.setdefault(owner, set()).add(point)
        self.index.rebuild()

    # -- construction ---------------------------------------------------

    @classmethod
    def for_diagram(
        cls,
        diagram: Diagram,
        *,
        margin: int = DEFAULT_MARGIN,
        fixed_sides: Iterable[Side] = (),
    ) -> "Plane":
        """Build the plane for a placed diagram.

        The routable area is the placement bounding box grown by
        ``margin`` tracks, except on ``fixed_sides`` (the -u/-d/-r/-l
        options of EUREKA) where the border stays on the bounding box.
        Existing routes in the diagram are registered as prerouted nets.
        """
        bbox = diagram.bounding_box(include_routes=True)
        fixed = set(fixed_sides)
        x1 = bbox.x - (0 if Side.LEFT in fixed else margin)
        y1 = bbox.y - (0 if Side.DOWN in fixed else margin)
        x2 = bbox.x2 + (0 if Side.RIGHT in fixed else margin)
        y2 = bbox.y2 + (0 if Side.UP in fixed else margin)
        plane = cls(bounds=Rect(x1, y1, x2 - x1, y2 - y1))
        for pm in diagram.placements.values():
            plane.block_rect(pm.rect)
        for pos in diagram.terminal_positions.values():
            plane.blocked.add(pos)
        for name, route in diagram.routes.items():
            for path in route.paths:
                plane.add_net_path(name, path)
        return plane

    def block_rect(self, rect: Rect) -> None:
        """Block every border and interior point of a module rectangle."""
        for x in range(rect.x, rect.x2 + 1):
            for y in range(rect.y, rect.y2 + 1):
                self.blocked.add(Point(x, y))

    # -- claims (section 5.7) --------------------------------------------

    def add_claim(self, point: Point, owner: Hashable) -> bool:
        """Reserve a point for ``owner``; fails on already-occupied points."""
        if point in self.blocked or point in self.claims or point in self.usage:
            return False
        if not self.bounds.contains(point):
            return False
        self.claims[point] = owner
        self._claims_by_owner.setdefault(owner, set()).add(point)
        self.index.claim_added(point)
        return True

    def release_claims(self, owners: Iterable[Hashable]) -> int:
        """Release every claim of the given owners; returns how many
        points were freed (served from the per-owner map, O(released)
        instead of a scan over all claims)."""
        released = 0
        for owner in set(owners):
            for point in self._claims_by_owner.pop(owner, ()):
                del self.claims[point]
                self.index.claim_removed(point)
                released += 1
        return released

    def claim_points(self, owners: Iterable[Hashable]) -> frozenset[Point]:
        """Points currently claimed by the given owners (O(owned))."""
        points: set[Point] = set()
        for owner in owners:
            points |= self._claims_by_owner.get(owner, set())
        return frozenset(points)

    def release_all_claims(self) -> int:
        released = len(self.claims)
        for point in list(self.claims):
            del self.claims[point]  # before the hook: it re-checks claims
            self.index.claim_removed(point)
        self._claims_by_owner.clear()
        return released

    # -- net registration -------------------------------------------------

    def add_net_path(self, net: str, path: Sequence[Point]) -> None:
        """Register a routed path: its covered points become wire usage,
        its vertices become blocking nodes."""
        norm = normalize_path(path)
        if not norm:
            return
        self.nodes[net].update(norm)  # endpoints and every bend vertex
        for seg in path_segments(norm):
            for p in seg.points():
                self.usage[p].setdefault(net, set()).add(seg.orientation)
        if len(norm) == 1:
            self.usage[norm[0]].setdefault(net, set())
        self._update_branch_nodes(net, norm)
        self.index.net_path_added(net, set(path_points(norm)))

    def _update_branch_nodes(self, net: str, path: Sequence[Point]) -> None:
        """A later path joining earlier geometry creates a branch node at
        the junction; junctions must block other nets."""
        for endpoint in (path[0], path[-1]):
            self.nodes[net].add(endpoint)

    def net_points(self, net: str) -> set[Point]:
        return self.index.net_points(net)

    def remove_net(self, net: str) -> None:
        """Erase every trace of ``net`` from the plane in O(own net):
        usage entries, node points and the index contribution — the
        speculative-routing rollback primitive.  Afterwards the plane
        (and its index) is indistinguishable from one that never routed
        the net."""
        for p in self.index.net_points(net):
            here = self.usage.get(p)
            if here is not None and net in here:
                del here[net]
                if not here:
                    del self.usage[p]
        self.nodes.pop(net, None)
        self.index.remove_net(net)

    # -- router queries ----------------------------------------------------

    def enterable(
        self,
        point: Point,
        direction: Direction,
        net: str,
        allow: frozenset[Point] = frozenset(),
    ) -> bool:
        """Can a wire of ``net`` move into ``point`` travelling in
        ``direction``?  ``allow`` exempts the net's own terminal points
        from the module/terminal blocks."""
        if not self.bounds.contains(point):
            return False
        if (point in self.blocked or point in self.claims) and point not in allow:
            return False
        ori = direction.orientation
        here = self.usage.get(point)
        if here:
            for other, orientations in here.items():
                if other == net:
                    continue
                if ori in orientations or not orientations:
                    return False  # overlap with a parallel foreign wire
                if point in self.nodes.get(other, ()):
                    return False  # foreign bend/end/branch point blocks
        return True

    def can_turn_at(self, point: Point, net: str) -> bool:
        """Bending or terminating at ``point`` is only legal when no
        foreign wire passes through it (a bend on a foreign wire would be
        an overlap, not a crossing)."""
        here = self.usage.get(point)
        if not here:
            return True
        return all(other == net for other in here)

    def crossings_at(self, point: Point, direction: Direction, net: str) -> int:
        """Number of foreign nets crossed when passing straight through
        ``point`` in ``direction``."""
        here = self.usage.get(point)
        if not here:
            return 0
        ori = direction.orientation
        return sum(
            1
            for other, orientations in here.items()
            if other != net and ori.perpendicular in orientations
        )

    # -- misc ---------------------------------------------------------------

    def occupied(self, point: Point) -> bool:
        return point in self.blocked or point in self.claims or point in self.usage
