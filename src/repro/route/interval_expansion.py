"""The literal interval-sweep line-expansion engine (sections 5.5.2/5.6.3).

:mod:`repro.route.line_expansion` realises the router's *optimisation* as
a state-space search; this module implements the paper's *algorithm*:
active segments are swept perpendicular to themselves, wave by wave, where
the wave number is the bend count.  Sweeping a segment moves it one track
at a time; obstacles cut pieces out of it (the pieces become *end
segments* marking the parallel zone border), foreign wires crossed en
route split the ranges by crossing count, and — once a segment is fully
consumed — the perpendicular borders of the swept zone become the next
wave's active segments (EXPAND_SEGMENT / NEW_ACTIVES).

Already-reached points block further expansion ("this new kind of
obstacle … is introduced only to insure that every zone is searched just
once").  Blocking is tracked per sweep axis — a cell swept horizontally
may still be swept vertically — which is what the paper's cutting of
*active segments* (zone borders), rather than zone interiors, amounts to;
it guarantees both termination and the exact minimum-bend property.  Among the solutions of the terminal wave the engine picks
minimum crossovers then minimum length (UPDATE_SOLUTION); like the
paper's, that tie-break considers only the wave in which the first
solution appears, so bend counts always match the exhaustive engine while
the crossover/length tie-break may occasionally differ.

Obstacle queries come from the plane's incremental
:class:`~repro.route.index.PlaneIndex`: each column's straight run jumps
to the next static obstacle with a bisect over the index's per-row/
per-column sorted obstacle coordinates (``NetView.run_stop``) instead of
probing the hard and blocked sets point by point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.geometry import Direction, Point, normalize_path
from ..obs import counters
from .index import NetView
from .line_expansion import RouteResult, SearchStats
from .plane import Plane

_DX = {Direction.LEFT: -1, Direction.RIGHT: 1, Direction.UP: 0, Direction.DOWN: 0}
_DY = {Direction.LEFT: 0, Direction.RIGHT: 0, Direction.UP: 1, Direction.DOWN: -1}


@dataclass
class _Active:
    """An active segment: points at perpendicular offset 0..n from the
    parent line, to be expanded in ``direction``.

    The segment spans ``lo..hi`` on the varying axis at fixed ``index``
    on the other axis; ``crossings`` is the crossover count of the paths
    reaching it; ``parent`` and ``parent_index`` let trace-back rebuild
    the actual path (RECONSTRUCT_PATH).
    """

    direction: Direction
    index: int  # the fixed coordinate of the segment's line
    lo: int
    hi: int
    crossings: int
    bends: int
    parent: "_Active | None"

    def point(self, v: int) -> Point:
        if _DY[self.direction]:  # sweeping vertically: segment is horizontal
            return Point(v, self.index)
        return Point(self.index, v)


def route_connection_intervals(
    plane: Plane,
    net: str,
    start: Point,
    start_directions: Iterable[Direction],
    targets: Mapping[Point, frozenset[Direction] | None] | Iterable[Point],
    *,
    allow: frozenset[Point] = frozenset(),
    stats: SearchStats | None = None,
) -> RouteResult | None:
    """Drop-in interval-sweep counterpart of
    :func:`repro.route.line_expansion.route_connection` (crossing-first
    tie-break only, like the paper's main configuration)."""
    if not isinstance(targets, Mapping):
        targets = {p: None for p in targets}
    if not targets:
        return None
    start_directions = list(start_directions)
    view = plane.index.view(net, allow)
    if start in targets:
        dirs = targets[start]
        if (
            dirs is None or any(d in dirs for d in start_directions)
        ) and not view.foreign_at(start):
            return RouteResult(path=[start], bends=0, crossings=0, length=0)

    target_dirs = {(p.x, p.y): dirs for p, dirs in targets.items()}

    # (axis, x, y): a cell may be swept once per axis (True = vertical).
    visited: set[tuple[bool, int, int]] = set()
    wave: list[_Active] = [
        _Active(d, _line_index(start, d), _line_coord(start, d), _line_coord(start, d), 0, 0, None)
        for d in start_directions
    ]

    expanded = 0
    solutions: list[tuple[int, int, list[Point]]] = []  # (crossings, length, path)

    while wave and not solutions:
        next_wave: list[_Active] = []
        for active in wave:
            expanded += 1
            _expand_segment(
                view,
                active,
                target_dirs,
                visited,
                next_wave,
                solutions,
            )
        wave = next_wave

    if stats is not None:
        stats.states_expanded += expanded
        stats.routes += 1
        if not solutions:
            stats.failures += 1
    counters.inc("route.connections")
    counters.inc("route.expansions", expanded)
    counters.observe("route.expansions_per_connection", expanded)
    if not solutions:
        counters.inc("route.connection_failures")
        return None
    crossings, length, path = min(solutions, key=lambda s: (s[0], s[1]))
    norm = normalize_path(path)
    return RouteResult(
        path=norm,
        bends=max(0, len(norm) - 2),
        crossings=crossings,
        length=length,
        states_expanded=expanded,
    )


def _line_index(p: Point, d: Direction) -> int:
    return p.y if _DY[d] else p.x


def _line_coord(p: Point, d: Direction) -> int:
    return p.x if _DY[d] else p.y


def _expand_segment(
    view: NetView,
    active: _Active,
    target_dirs,
    visited: set[tuple[bool, int, int]],
    next_wave: list[_Active],
    solutions: list,
) -> None:
    """EXPAND_SEGMENT: sweep ``active`` in its direction until every
    subrange is consumed, recording the zone, solutions and new actives.

    Columns are independent, so each is swept to completion on its own:
    a bisect against the index's sorted obstacle coordinates bounds every
    straight run, and only the per-search ``visited`` marks (and crossing
    counts) are checked point by point inside the run.
    """
    d = active.direction
    vertical_sweep = _DY[d] != 0
    step = _DY[d] if vertical_sweep else _DX[d]
    cross_tot = view.cross_v if vertical_sweep else view.cross_h
    own_cross = view.own_cross_v if vertical_sweep else view.own_cross_h
    occ_pts = view.occ_pts
    self_clear = view.self_clear
    if vertical_sweep:
        limit_lo, limit_hi = view.x1, view.x2
        index_lo, index_hi = view.y1, view.y2
    else:
        limit_lo, limit_hi = view.y1, view.y2
        index_lo, index_hi = view.x1, view.x2

    reached: dict[int, list[tuple[int, int]]] = {}  # v -> [(index, crossings)]
    run_stop = view.run_stop
    for v in range(max(active.lo, limit_lo), min(active.hi, limit_hi) + 1):
        crossings = active.crossings
        index = active.index
        stop = run_stop(vertical_sweep, v, index, step)
        if step > 0:
            end = index_hi if stop is None else min(stop - 1, index_hi)
        else:
            end = index_lo if stop is None else max(stop + 1, index_lo)
        cells = None
        while index != end:
            index += step
            q = (v, index) if vertical_sweep else (index, v)
            mark = (vertical_sweep, q[0], q[1])
            if mark in visited:
                break  # this column's sweep ends (an end segment)
            visited.add(mark)
            cross = cross_tot.get(q, 0)
            if cross:
                cross -= own_cross.get(q, 0)
            crossings += cross
            if cells is None:
                cells = reached.setdefault(v, [])
            cells.append((index, crossings))
            arrival = target_dirs.get(q, _MISSING)
            if arrival is not _MISSING:
                if (arrival is None or d in arrival) and (
                    q not in occ_pts or q in self_clear
                ):
                    solutions.append(
                        _make_solution(active, v, index, crossings, vertical_sweep)
                    )

    # NEW_ACTIVES: along every swept column, the reached cells where a
    # bend is legal (no foreign wire through the point) become the next
    # wave's perpendicular active segments.  Cells are grouped into
    # maximal runs that are contiguous, share a crossing count (the
    # paper's lc/rc splitting) and are all turn-legal.
    if not reached:
        return
    perp_dirs = (
        (Direction.LEFT, Direction.RIGHT)
        if vertical_sweep
        else (Direction.DOWN, Direction.UP)
    )
    for v, cells in reached.items():
        cells.sort()
        groups: list[list[tuple[int, int]]] = []
        for idx, cr in cells:
            q = (v, idx) if vertical_sweep else (idx, v)
            if q in occ_pts and q not in self_clear:
                groups.append([])  # crossing point: a bend may not sit here
                continue
            if (
                groups
                and groups[-1]
                and idx == groups[-1][-1][0] + 1  # cells are sorted ascending
                and cr == groups[-1][-1][1]
            ):
                groups[-1].append((idx, cr))
            else:
                groups.append([(idx, cr)])
        for group in groups:
            if not group:
                continue
            indices = [g[0] for g in group]
            lo, hi = min(indices), max(indices)
            crossings = group[0][1]
            for nd in perp_dirs:
                next_wave.append(
                    _Active(
                        direction=nd,
                        index=v,
                        lo=lo,
                        hi=hi,
                        crossings=crossings,
                        bends=active.bends + 1,
                        parent=_Anchor(active, v),
                    )
                )


class _Anchor:
    """Trace-back anchor: the parent active plus the column on it the
    child branched from (the paper's (ip, xp, yp, dp) originator)."""

    __slots__ = ("active", "coord")

    def __init__(self, active: _Active, coord: int) -> None:
        self.active = active
        self.coord = coord


def _make_solution(
    active: _Active, v: int, index: int, crossings: int, vertical_sweep: bool
) -> tuple[int, int, list[Point]]:
    """RECONSTRUCT_PATH: from the solution point back through the anchors
    to the start terminal."""
    path: list[Point] = []
    if vertical_sweep:
        path.append(Point(v, index))
    else:
        path.append(Point(index, v))
    cursor: _Active | None = active
    coord = v
    while cursor is not None:
        # The path meets the cursor's line at (coord on the segment axis,
        # cursor.index on the sweep axis).
        if _DY[cursor.direction]:
            path.append(Point(coord, cursor.index))
        else:
            path.append(Point(cursor.index, coord))
        anchor = cursor.parent
        if anchor is None:
            cursor = None
        else:
            coord_next = anchor.coord
            cursor = anchor.active
            # We travelled along cursor's line to reach the branch column.
            coord = coord_next
    path.reverse()
    length = sum(a.manhattan(b) for a, b in zip(path, path[1:]))
    return (crossings, length, path)


_MISSING = object()
