"""The Hightower line router (section 5.2.3) — baseline.

Escape-line search: run expansion lines from both terminals, repeatedly
pick for every line the escape line that gets past the blocking obstacle,
and stop when a line of the A set intersects a line of the B set.  Fast
for simple mazes and tends to find minimum-bend paths, but — exactly as
the paper notes when rejecting it — it does *not* guarantee a connection:
only a handful of escape points per line are probed, so it can miss
routes the exhaustive line-expansion router finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.geometry import Direction, Orientation, Point, normalize_path, path_bends
from .lee import path_crossings
from .line_expansion import RouteResult, SearchStats
from .plane import Plane

MAX_LEVELS = 14
MAX_ESCAPES_PER_LINE = 6


@dataclass(frozen=True)
class _Line:
    """An expansion line: through ``origin``, along ``orientation``,
    covering [lo, hi] on the varying axis."""

    orientation: Orientation
    index: int
    lo: int
    hi: int
    origin: Point
    parent: "_Line | None" = None

    def contains(self, p: Point) -> bool:
        if self.orientation is Orientation.HORIZONTAL:
            return p.y == self.index and self.lo <= p.x <= self.hi
        return p.x == self.index and self.lo <= p.y <= self.hi

    def point_at(self, v: int) -> Point:
        if self.orientation is Orientation.HORIZONTAL:
            return Point(v, self.index)
        return Point(self.index, v)


def _trace_line(plane: Plane, net: str, start: Point, orientation: Orientation,
                allow: frozenset[Point]) -> _Line | None:
    """Longest legal wire segment through ``start`` along ``orientation``."""
    if orientation is Orientation.HORIZONTAL:
        pos_dir, neg_dir = Direction.RIGHT, Direction.LEFT
        v0 = start.x
    else:
        pos_dir, neg_dir = Direction.UP, Direction.DOWN
        v0 = start.y
    hi = v0
    p = start
    while True:
        q = p.step(pos_dir)
        if not plane.enterable(q, pos_dir, net, allow):
            break
        p = q
        hi += 1
    lo = v0
    p = start
    while True:
        q = p.step(neg_dir)
        if not plane.enterable(q, neg_dir, net, allow):
            break
        p = q
        lo -= 1
    return _Line(orientation, start.y if orientation is Orientation.HORIZONTAL else start.x, lo, hi, start)


def _escape_points(line: _Line, toward: Point) -> list[int]:
    """Candidate escape coordinates: the target-aligned point, the line
    ends, the origin, and midpoints — the classic heuristic probe set."""
    target_v = toward.x if line.orientation is Orientation.HORIZONTAL else toward.y
    origin_v = (
        line.origin.x if line.orientation is Orientation.HORIZONTAL else line.origin.y
    )
    candidates = [
        max(line.lo, min(line.hi, target_v)),
        line.lo,
        line.hi,
        origin_v,
        (line.lo + line.hi) // 2,
    ]
    out: list[int] = []
    for v in candidates:
        if v not in out:
            out.append(v)
    return out[:MAX_ESCAPES_PER_LINE]


def _intersection(a: _Line, b: _Line, plane: Plane, net: str) -> Point | None:
    if a.orientation is b.orientation:
        if a.orientation is not b.orientation or a.index != b.index:
            return None
        lo, hi = max(a.lo, b.lo), min(a.hi, b.hi)
        if lo > hi:
            return None
        p = a.point_at(lo)
        return p if plane.can_turn_at(p, net) else None
    h, v = (a, b) if a.orientation is Orientation.HORIZONTAL else (b, a)
    if v.lo <= h.index <= v.hi and h.lo <= v.index <= h.hi:
        p = Point(v.index, h.index)
        if plane.can_turn_at(p, net):
            return p
    return None


def _walk_back(line: _Line, meet: Point) -> list[Point]:
    """Bend points from the meeting point back to the originating terminal."""
    points = [meet]
    cursor: _Line | None = line
    while cursor is not None:
        points.append(cursor.origin)
        cursor = cursor.parent
    return points


def route_hightower(
    plane: Plane,
    net: str,
    start: Point,
    start_directions: Iterable[Direction],
    targets: Mapping[Point, frozenset[Direction] | None] | Iterable[Point],
    *,
    allow: frozenset[Point] = frozenset(),
    stats: SearchStats | None = None,
) -> RouteResult | None:
    """Escape-line search between ``start`` and the nearest target point.

    Multipoint target sets are reduced to the target nearest the start
    (line probing toward a cloud is not part of the classic algorithm).
    """
    if not isinstance(targets, Mapping):
        targets = {p: None for p in targets}
    if not targets:
        return None
    if start in targets:
        return RouteResult(path=[start], bends=0, crossings=0, length=0)
    goal = min(targets, key=lambda p: p.manhattan(start))

    start_dirs = list(start_directions)
    a_lines = [
        line
        for d in start_dirs
        if (line := _trace_line(plane, net, start, d.orientation, allow)) is not None
    ]
    b_lines = [
        line
        for o in (Orientation.HORIZONTAL, Orientation.VERTICAL)
        if (line := _trace_line(plane, net, goal, o, allow)) is not None
    ]
    expanded = len(a_lines) + len(b_lines)

    for _level in range(MAX_LEVELS):
        meet = _find_meeting(a_lines, b_lines, plane, net)
        if meet is not None:
            return _build_result(plane, net, meet, stats, expanded)
        a_lines, grew_a = _expand(plane, net, a_lines, goal, allow)
        expanded += grew_a
        meet = _find_meeting(a_lines, b_lines, plane, net)
        if meet is not None:
            return _build_result(plane, net, meet, stats, expanded)
        b_lines, grew_b = _expand(plane, net, b_lines, start, allow)
        expanded += grew_b
        if not grew_a and not grew_b:
            break
    if stats is not None:
        stats.states_expanded += expanded
        stats.routes += 1
        stats.failures += 1
    return None


def _find_meeting(a_lines, b_lines, plane, net):
    for la in a_lines:
        for lb in b_lines:
            p = _intersection(la, lb, plane, net)
            if p is not None:
                return (la, lb, p)
    return None


def _expand(plane, net, lines, toward, allow):
    new_lines = list(lines)
    seen = {(l.orientation, l.index, l.lo, l.hi) for l in lines}
    grown = 0
    for line in lines:
        for v in _escape_points(line, toward):
            origin = line.point_at(v)
            if not plane.can_turn_at(origin, net):
                continue
            escape = _trace_line(
                plane, net, origin, line.orientation.perpendicular, allow
            )
            if escape is None:
                continue
            key = (escape.orientation, escape.index, escape.lo, escape.hi)
            if key in seen:
                continue
            seen.add(key)
            new_lines.append(
                _Line(
                    escape.orientation,
                    escape.index,
                    escape.lo,
                    escape.hi,
                    origin,
                    parent=line,
                )
            )
            grown += 1
    return new_lines, grown


def _build_result(plane, net, meeting, stats, expanded):
    la, lb, p = meeting
    forward = _walk_back(la, p)[::-1]  # start ... meet
    backward = _walk_back(lb, p)[1:]  # meet-exclusive ... goal
    path = normalize_path(forward + backward)
    if stats is not None:
        stats.states_expanded += expanded
        stats.routes += 1
    from ..core.geometry import path_length

    return RouteResult(
        path=path,
        bends=path_bends(path),
        crossings=path_crossings(plane, net, path),
        length=path_length(path),
    )
