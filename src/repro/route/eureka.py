"""EUREKA — the routing driver (chapter 5 and Appendix F).

Takes a placed (possibly partially prerouted) diagram and adds a path for
every net:

* multipoint nets are routed point-to-point first, then every further
  terminal is connected to the geometry routed so far (section 5.5.3),
* claimpoints protect not-yet-routed terminals (section 5.7),
* nets that fail while claims are in place are retried once after every
  claim has been released (section 5.7),
* prerouted paths already present in the diagram are kept and used as
  connection targets (Appendix F),
* the ``-u/-d/-r/-l`` options pin plane borders, ``-s`` swaps the
  crossover/length tie-break (Appendix F).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Literal

from ..core.diagram import Diagram, RoutedNet
from ..core.geometry import Direction, Point, Side
from ..core.netlist import Net, Pin
from ..obs import counters, get_logger, span
from ..obs.congestion import snapshot as congestion_snapshot
from . import claimpoints
from .line_expansion import (
    CostOrder,
    RouteResult,
    SearchStats,
    route_connection,
    start_directions_for,
)
from .plane import DEFAULT_MARGIN, Plane

NetOrder = Literal["input", "shortest_first", "fewest_pins_first"]
Engine = Literal["state", "intervals", "reference"]


@dataclass(frozen=True)
class RouterOptions:
    """Knobs of the EUREKA command line (Appendix F) plus ablations."""

    claimpoints: bool = True
    cost_order: CostOrder = CostOrder.BENDS_CROSSINGS_LENGTH
    margin: int = DEFAULT_MARGIN
    fixed_sides: frozenset[Side] = frozenset()
    retry_failed: bool = True
    net_order: NetOrder = "shortest_first"
    #: "state" = the indexed A* lexicographic search engine; "intervals" =
    #: the paper's literal segment-sweep engine (identical bend counts,
    #: crossing-first tie-break only); "reference" = the pre-index
    #: snapshot-rebuilding Dijkstra, kept for benchmarks and verification.
    engine: Engine = "state"
    #: Cross-check every connection against the reference engine and
    #: count cost-tuple mismatches under ``route.verify_mismatch`` (slow;
    #: for tests and the routing bench).
    verify_optimum: bool = False

    def with_swap_option(self) -> "RouterOptions":
        """The -s option: length before crossovers."""
        return replace(self, cost_order=CostOrder.BENDS_LENGTH_CROSSINGS)


class FailureReason(str, enum.Enum):
    """Why a net ended up unroutable (or needed the retry pass).

    ``str``-valued so reasons serialize as plain strings in JSON reports
    and compare equal to their value.
    """

    #: INIT_NET could not connect any pin pair — no geometry at all.
    NO_INITIAL_PATH = "no_initial_path"
    #: EXPAND_NET exhausted the search space for at least one pin.
    EXPANSION_EXHAUSTED = "expansion_exhausted"
    #: Failed while foreign claimpoints stood and no retry pass ran, so
    #: the claims may be the obstacle (the retry would have told).
    CLAIM_BLOCKED = "claim_blocked"
    #: Failed the first pass *and* the claim-free retry.
    RETRY_EXHAUSTED = "retry_exhausted"


class NetFailure(str):
    """A failed net's name, carrying *why* it failed.

    Subclasses ``str`` so every existing consumer of
    ``RoutingReport.failed_nets`` (membership tests, printing, JSON
    serialization) keeps working while new code reads ``.reason``.
    """

    # (no __slots__: CPython forbids nonempty slots on str subclasses)
    reason: FailureReason
    unconnected_pins: int

    def __new__(
        cls, net: str, reason: FailureReason, *, unconnected_pins: int = 0
    ) -> "NetFailure":
        obj = super().__new__(cls, net)
        obj.reason = reason
        obj.unconnected_pins = unconnected_pins
        return obj

    def __repr__(self) -> str:  # keep prints informative
        return f"NetFailure({str.__repr__(self)}, {self.reason.value})"


@dataclass
class RoutingReport:
    """What happened during one EUREKA run."""

    nets_total: int = 0
    nets_routed: int = 0
    nets_failed: int = 0
    #: Unroutable nets; each element is a :class:`NetFailure` (a ``str``
    #: subclass), so ``"n" in failed_nets`` still works and
    #: ``failed_nets[0].reason`` says why.
    failed_nets: list[NetFailure] = field(default_factory=list)
    #: Nets that failed the first pass and were given the claim-free retry.
    retried_nets: list[str] = field(default_factory=list)
    #: Subset of ``retried_nets`` that routed once the claims were gone —
    #: their first-pass failure was claim blockage, not congestion.
    recovered_nets: list[str] = field(default_factory=list)
    claims_placed: int = 0
    seconds: float = 0.0
    search: SearchStats = field(default_factory=SearchStats)
    #: Congestion snapshot read off the plane index when routing finished
    #: (:meth:`repro.obs.congestion.CongestionMap.to_dict` shape) — this
    #: is what makes congestion observable per run without a plane rescan.
    congestion: dict = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        if self.nets_total == 0:
            return 1.0
        return self.nets_routed / self.nets_total

    @property
    def failure_reasons(self) -> dict[str, FailureReason]:
        """``{net name: why it stayed unroutable}``."""
        return {str(f): f.reason for f in self.failed_nets}


def route_diagram(
    diagram: Diagram,
    options: RouterOptions | None = None,
    *,
    only_nets: Iterable[str] | None = None,
) -> RoutingReport:
    """Add a path for every unrouted net of a placed diagram, in place.

    ``only_nets`` restricts the run to a subset (used by the rip-up pass
    to give previously failed nets first pick of the freed tracks)."""
    options = options or RouterOptions()
    report = RoutingReport()
    started = time.perf_counter()

    with span("eureka.route") as root_span:
        with span("eureka.plane"):
            plane = Plane.for_diagram(
                diagram, margin=options.margin, fixed_sides=options.fixed_sides
            )
            routable = _routable_nets(diagram)
            if only_nets is not None:
                wanted = set(only_nets)
                routable = [n for n in routable if n in wanted]
            todo = _order_nets(diagram, routable, options.net_order)
        report.nets_total = len(todo)

        if options.claimpoints:
            with span("eureka.claims"):
                report.claims_placed = claimpoints.place_claims(plane, diagram, todo)

        first_pass: dict[str, FailureReason] = {}
        claims_seen: dict[str, bool] = {}
        with span("eureka.first_pass", nets=len(todo)):
            for net_name in todo:
                net = diagram.network.nets[net_name]
                claimpoints.release_net_claims(plane, net_name, net.pins)
                with span("eureka.net", net=net_name) as net_span:
                    reason = _route_net(plane, diagram, net, options, report.search)
                    if reason is not None:
                        net_span.set(failed=reason.value)
                        first_pass[net_name] = reason
                        claims_seen[net_name] = bool(plane.claims)

        plane.release_all_claims()
        failed: list[NetFailure] = []
        if options.retry_failed and first_pass:
            # The paper retries unconnected terminals once every claim is
            # gone.  We keep protecting the *failed* nets' own terminals
            # from each other during the retry — without this, the first
            # retried net can wall in the next one all over again.
            with span("eureka.retry", nets=len(first_pass)):
                retry_nets = list(first_pass)
                if options.claimpoints:
                    claimpoints.place_claims(plane, diagram, retry_nets)
                for net_name in retry_nets:
                    net = diagram.network.nets[net_name]
                    claimpoints.release_net_claims(plane, net_name, net.pins)
                    diagram.route_for(net_name).failed_pins.clear()
                    report.retried_nets.append(net_name)
                    counters.inc("route.retries")
                    with span("eureka.net", net=net_name, retry=True) as net_span:
                        reason = _route_net(
                            plane, diagram, net, options, report.search
                        )
                    if reason is None:
                        # Routed the moment the claims were gone: the
                        # first-pass failure was claim blockage.
                        report.recovered_nets.append(net_name)
                        counters.inc("route.retry_recovered")
                    else:
                        net_span.set(failed=FailureReason.RETRY_EXHAUSTED.value)
                        failure = NetFailure(
                            net_name,
                            FailureReason.RETRY_EXHAUSTED,
                            unconnected_pins=len(
                                diagram.route_for(net_name).failed_pins
                            ),
                        )
                        failed.append(failure)
            plane.release_all_claims()
        else:
            for net_name, reason in first_pass.items():
                if claims_seen.get(net_name):
                    # Foreign claims stood during the only attempt; with
                    # no retry pass to disambiguate, blame them.
                    reason = FailureReason.CLAIM_BLOCKED
                failed.append(
                    NetFailure(
                        net_name,
                        reason,
                        unconnected_pins=len(diagram.route_for(net_name).failed_pins),
                    )
                )

        report.failed_nets = failed
        report.nets_failed = len(failed)
        report.nets_routed = report.nets_total - report.nets_failed
        report.congestion = congestion_snapshot(plane)
        report.seconds = time.perf_counter() - started
        root_span.set(
            nets=report.nets_total,
            routed=report.nets_routed,
            failed=report.nets_failed,
        )

    counters.inc("route.runs")
    counters.inc("route.nets", report.nets_total)
    counters.inc("route.nets_routed", report.nets_routed)
    counters.inc("route.nets_failed", report.nets_failed)
    for failure in failed:
        counters.inc(f"route.failure.{failure.reason.value}")
    counters.observe("route.seconds", report.seconds)
    if report.failed_nets:
        get_logger("route.eureka").warning(
            "unroutable nets remain",
            extra={
                "fields": {
                    "failed": report.nets_failed,
                    "reasons": {
                        str(f): f.reason.value for f in report.failed_nets
                    },
                }
            },
        )
    return report


def _routable_nets(diagram: Diagram) -> list[str]:
    """Nets that still need (more) routing: at least two pins and not yet
    fully connected by prerouted geometry."""
    out = []
    for net in diagram.network.nets.values():
        if len(net.pins) < 2:
            continue
        route = diagram.routes.get(net.name)
        if route is not None and route.paths:
            pts = route.points()
            if all(diagram.pin_position(p) in pts for p in net.pins):
                continue  # fully prerouted
        out.append(net.name)
    return out


def _order_nets(diagram: Diagram, names: list[str], order: NetOrder) -> list[str]:
    if order == "input":
        return list(names)

    def span(name: str) -> int:
        positions = [diagram.pin_position(p) for p in diagram.network.nets[name].pins]
        xs = [p.x for p in positions]
        ys = [p.y for p in positions]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    if order == "fewest_pins_first":
        return sorted(names, key=lambda n: (len(diagram.network.nets[n].pins), span(n), n))
    return sorted(names, key=lambda n: (span(n), len(diagram.network.nets[n].pins), n))


def _route_net(
    plane: Plane,
    diagram: Diagram,
    net: Net,
    options: RouterOptions,
    stats: SearchStats,
) -> FailureReason | None:
    """Route one (possibly multipoint, possibly partially prerouted) net.
    Returns ``None`` when every pin ends up connected, otherwise why not."""
    route = diagram.route_for(net.name)
    allow = frozenset(diagram.pin_position(p) for p in net.pins)
    existing = plane.net_points(net.name)

    pending = [p for p in net.pins if diagram.pin_position(p) not in existing]
    connected_any = bool(existing)

    if not connected_any:
        pending = _init_point_to_point(
            plane, diagram, route, net, pending, allow, options, stats
        )
        connected_any = bool(plane.net_points(net.name))
        if not connected_any:
            route.failed_pins = list(pending)
            return FailureReason.NO_INITIAL_PATH

    # EXPAND_NET: connect each remaining pin to the geometry so far,
    # nearest pin first.
    failed: list[Pin] = []
    while pending:
        geometry = plane.net_points(net.name)
        pending.sort(key=lambda p: _distance_to_set(diagram.pin_position(p), geometry))
        pin = pending.pop(0)
        result = _route_pin_to_targets(
            plane, diagram, net, pin, {q: None for q in geometry}, allow, options, stats
        )
        if result is None:
            failed.append(pin)
        else:
            _commit(plane, route, net.name, result)
    route.failed_pins = failed
    return FailureReason.EXPANSION_EXHAUSTED if failed else None


def _init_point_to_point(
    plane: Plane,
    diagram: Diagram,
    route: RoutedNet,
    net: Net,
    pending: list[Pin],
    allow: frozenset[Point],
    options: RouterOptions,
    stats: SearchStats,
) -> list[Pin]:
    """INIT_NET: try pin pairs (closest first) until one pair connects.
    Returns the pins still unconnected afterwards."""
    pairs = sorted(
        (
            (i, j)
            for i in range(len(pending))
            for j in range(i + 1, len(pending))
        ),
        key=lambda ij: diagram.pin_position(pending[ij[0]]).manhattan(
            diagram.pin_position(pending[ij[1]])
        ),
    )
    for i, j in pairs:
        a, b = pending[i], pending[j]
        target = diagram.pin_position(b)
        arrival = _arrival_directions(diagram, b)
        result = _route_pin_to_targets(
            plane, diagram, net, a, {target: arrival}, allow, options, stats
        )
        if result is not None:
            _commit(plane, route, net.name, result)
            return [p for k, p in enumerate(pending) if k not in (i, j)]
    return pending


def _route_pin_to_targets(
    plane: Plane,
    diagram: Diagram,
    net: Net,
    pin: Pin,
    targets: dict[Point, frozenset[Direction] | None],
    allow: frozenset[Point],
    options: RouterOptions,
    stats: SearchStats,
) -> RouteResult | None:
    start = diagram.pin_position(pin)
    if start in targets:
        # Abutting terminals: the pins already share a point; the net is a
        # zero-length connection there.
        return RouteResult(path=[start], bends=0, crossings=0, length=0)
    side = diagram.pin_side(pin)
    dirs = start_directions_for(side.outward if side is not None else None)
    if not targets:
        return None
    if options.engine == "intervals":
        from .interval_expansion import route_connection_intervals

        return route_connection_intervals(
            plane, net.name, start, dirs, targets, allow=allow, stats=stats
        )
    if options.engine == "reference":
        from .reference import route_connection_reference

        return route_connection_reference(
            plane,
            net.name,
            start,
            dirs,
            targets,
            allow=allow,
            cost_order=options.cost_order,
            stats=stats,
        )
    result = route_connection(
        plane,
        net.name,
        start,
        dirs,
        targets,
        allow=allow,
        cost_order=options.cost_order,
        stats=stats,
    )
    if options.verify_optimum:
        from .reference import route_connection_reference

        check = route_connection_reference(
            plane,
            net.name,
            start,
            dirs,
            targets,
            allow=allow,
            cost_order=options.cost_order,
        )
        ours = None if result is None else (result.bends, result.crossings, result.length)
        theirs = None if check is None else (check.bends, check.crossings, check.length)
        counters.inc("route.verified_connections")
        if ours != theirs:
            counters.inc("route.verify_mismatch")
            get_logger("route.eureka").error(
                "indexed A* disagrees with reference optimum",
                extra={"fields": {"net": net.name, "astar": ours, "reference": theirs}},
            )
    return result


def _arrival_directions(diagram: Diagram, pin: Pin) -> frozenset[Direction] | None:
    """A wire must arrive at a subsystem terminal moving into the module
    (perpendicular to its side); system terminals accept any arrival."""
    side = diagram.pin_side(pin)
    if side is None:
        return None
    return frozenset({side.outward.opposite})


def _commit(plane: Plane, route: RoutedNet, net_name: str, result: RouteResult) -> None:
    route.add_path(result.path)
    plane.add_net_path(net_name, result.path)


def _distance_to_set(p: Point, points: Iterable[Point]) -> int:
    return min((p.manhattan(q) for q in points), default=1 << 30)
