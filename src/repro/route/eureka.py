"""EUREKA — the routing driver (chapter 5 and Appendix F).

Takes a placed (possibly partially prerouted) diagram and adds a path for
every net:

* multipoint nets are routed point-to-point first, then every further
  terminal is connected to the geometry routed so far (section 5.5.3),
* claimpoints protect not-yet-routed terminals (section 5.7),
* nets that fail while claims are in place are retried once after every
  claim has been released (section 5.7),
* prerouted paths already present in the diagram are kept and used as
  connection targets (Appendix F),
* the ``-u/-d/-r/-l`` options pin plane borders, ``-s`` swaps the
  crossover/length tie-break (Appendix F).
"""

from __future__ import annotations

import enum
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Iterable, Literal

from ..core.diagram import Diagram, RoutedNet
from ..core.geometry import Direction, Point, Side, normalize_path, path_points
from ..core.netlist import Net, Pin
from ..obs import counters, get_logger, span
from ..obs.congestion import snapshot as congestion_snapshot
from . import claimpoints
from .line_expansion import (
    CostOrder,
    RouteResult,
    SearchStats,
    route_connection,
    start_directions_for,
)
from .plane import DEFAULT_MARGIN, Plane

NetOrder = Literal["input", "shortest_first", "fewest_pins_first"]
Engine = Literal["state", "intervals", "reference"]


@dataclass(frozen=True)
class RouterOptions:
    """Knobs of the EUREKA command line (Appendix F) plus ablations."""

    claimpoints: bool = True
    cost_order: CostOrder = CostOrder.BENDS_CROSSINGS_LENGTH
    margin: int = DEFAULT_MARGIN
    fixed_sides: frozenset[Side] = frozenset()
    retry_failed: bool = True
    net_order: NetOrder = "shortest_first"
    #: "state" = the indexed A* lexicographic search engine; "intervals" =
    #: the paper's literal segment-sweep engine (identical bend counts,
    #: crossing-first tie-break only); "reference" = the pre-index
    #: snapshot-rebuilding Dijkstra, kept for benchmarks and verification.
    engine: Engine = "state"
    #: Run the state engine bidirectionally — a second search grows path
    #: suffixes from the goal states and the fronts meet in the middle.
    #: Same exact optimum cost tuples; equal-cost tie-break *paths* may
    #: differ, so this option is part of the job digest.
    bidirectional: bool = False
    #: Route conflict-unlikely waves of nets concurrently on threads over
    #: read-only plane views, commit in net order, re-route conflicted
    #: nets serially.  Guaranteed identical output to the serial router —
    #: excluded from the job digest.
    parallel_nets: bool = False
    #: Cross-check every connection against the reference engine and
    #: count cost-tuple mismatches under ``route.verify_mismatch`` (slow;
    #: for tests and the routing bench).
    verify_optimum: bool = False

    def with_swap_option(self) -> "RouterOptions":
        """The -s option: length before crossovers."""
        return replace(self, cost_order=CostOrder.BENDS_LENGTH_CROSSINGS)


class FailureReason(str, enum.Enum):
    """Why a net ended up unroutable (or needed the retry pass).

    ``str``-valued so reasons serialize as plain strings in JSON reports
    and compare equal to their value.
    """

    #: INIT_NET could not connect any pin pair — no geometry at all.
    NO_INITIAL_PATH = "no_initial_path"
    #: EXPAND_NET exhausted the search space for at least one pin.
    EXPANSION_EXHAUSTED = "expansion_exhausted"
    #: Failed while foreign claimpoints stood and no retry pass ran, so
    #: the claims may be the obstacle (the retry would have told).
    CLAIM_BLOCKED = "claim_blocked"
    #: Failed the first pass *and* the claim-free retry.
    RETRY_EXHAUSTED = "retry_exhausted"


class NetFailure(str):
    """A failed net's name, carrying *why* it failed.

    Subclasses ``str`` so every existing consumer of
    ``RoutingReport.failed_nets`` (membership tests, printing, JSON
    serialization) keeps working while new code reads ``.reason``.
    """

    # (no __slots__: CPython forbids nonempty slots on str subclasses)
    reason: FailureReason
    unconnected_pins: int

    def __new__(
        cls, net: str, reason: FailureReason, *, unconnected_pins: int = 0
    ) -> "NetFailure":
        obj = super().__new__(cls, net)
        obj.reason = reason
        obj.unconnected_pins = unconnected_pins
        return obj

    def __repr__(self) -> str:  # keep prints informative
        return f"NetFailure({str.__repr__(self)}, {self.reason.value})"


@dataclass
class RoutingReport:
    """What happened during one EUREKA run."""

    nets_total: int = 0
    nets_routed: int = 0
    nets_failed: int = 0
    #: Unroutable nets; each element is a :class:`NetFailure` (a ``str``
    #: subclass), so ``"n" in failed_nets`` still works and
    #: ``failed_nets[0].reason`` says why.
    failed_nets: list[NetFailure] = field(default_factory=list)
    #: Nets that failed the first pass and were given the claim-free retry.
    retried_nets: list[str] = field(default_factory=list)
    #: Subset of ``retried_nets`` that routed once the claims were gone —
    #: their first-pass failure was claim blockage, not congestion.
    recovered_nets: list[str] = field(default_factory=list)
    claims_placed: int = 0
    seconds: float = 0.0
    search: SearchStats = field(default_factory=SearchStats)
    #: Congestion snapshot read off the plane index when routing finished
    #: (:meth:`repro.obs.congestion.CongestionMap.to_dict` shape) — this
    #: is what makes congestion observable per run without a plane rescan.
    congestion: dict = field(default_factory=dict)
    #: Speculative-wave outcomes worth explaining: one dict per conflict
    #: (``{net, wave, outcome, cause, rollback}``) under ``parallel_nets``.
    parallel_events: list[dict] = field(default_factory=list)
    #: Search introspection built from :attr:`search`: per-net aggregates,
    #: the noisiest per-connection rows, a bound-tightness histogram and
    #: the parallel-wave events — the JSON-able payload a
    #: :class:`~repro.obs.runlog.RunRecord` stores under ``extra.search``
    #: and ``artwork-inspect explain`` reads back.
    search_detail: dict = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        if self.nets_total == 0:
            return 1.0
        return self.nets_routed / self.nets_total

    @property
    def failure_reasons(self) -> dict[str, FailureReason]:
        """``{net name: why it stayed unroutable}``."""
        return {str(f): f.reason for f in self.failed_nets}


def route_diagram(
    diagram: Diagram,
    options: RouterOptions | None = None,
    *,
    only_nets: Iterable[str] | None = None,
) -> RoutingReport:
    """Add a path for every unrouted net of a placed diagram, in place.

    ``only_nets`` restricts the run to a subset (used by the rip-up pass
    to give previously failed nets first pick of the freed tracks)."""
    options = options or RouterOptions()
    report = RoutingReport()
    started = time.perf_counter()

    with span("eureka.route") as root_span:
        with span("eureka.plane"):
            plane = Plane.for_diagram(
                diagram, margin=options.margin, fixed_sides=options.fixed_sides
            )
            routable = _routable_nets(diagram)
            if only_nets is not None:
                wanted = set(only_nets)
                routable = [n for n in routable if n in wanted]
            todo = _order_nets(diagram, routable, options.net_order)
        report.nets_total = len(todo)

        if options.claimpoints:
            with span("eureka.claims"):
                report.claims_placed = claimpoints.place_claims(plane, diagram, todo)

        first_pass: dict[str, FailureReason] = {}
        claims_seen: dict[str, bool] = {}
        with span("eureka.first_pass", nets=len(todo)):
            if (
                options.parallel_nets
                and options.engine == "state"
                and len(todo) > 1
            ):
                _first_pass_parallel(
                    plane, diagram, todo, options, report, first_pass, claims_seen
                )
            else:
                for net_name in todo:
                    net = diagram.network.nets[net_name]
                    claimpoints.release_net_claims(plane, net_name, net.pins)
                    with span("eureka.net", net=net_name) as net_span:
                        reason = _route_net(
                            plane, diagram, net, options, report.search
                        )
                        if reason is not None:
                            net_span.set(failed=reason.value)
                            first_pass[net_name] = reason
                            claims_seen[net_name] = bool(plane.claims)

        plane.release_all_claims()
        failed: list[NetFailure] = []
        if options.retry_failed and first_pass:
            # The paper retries unconnected terminals once every claim is
            # gone.  We keep protecting the *failed* nets' own terminals
            # from each other during the retry — without this, the first
            # retried net can wall in the next one all over again.
            with span("eureka.retry", nets=len(first_pass)):
                retry_nets = list(first_pass)
                if options.claimpoints:
                    claimpoints.place_claims(plane, diagram, retry_nets)
                for net_name in retry_nets:
                    net = diagram.network.nets[net_name]
                    claimpoints.release_net_claims(plane, net_name, net.pins)
                    diagram.route_for(net_name).failed_pins.clear()
                    report.retried_nets.append(net_name)
                    counters.inc("route.retries")
                    with span("eureka.net", net=net_name, retry=True) as net_span:
                        reason = _route_net(
                            plane, diagram, net, options, report.search
                        )
                    if reason is None:
                        # Routed the moment the claims were gone: the
                        # first-pass failure was claim blockage.
                        report.recovered_nets.append(net_name)
                        counters.inc("route.retry_recovered")
                    else:
                        net_span.set(failed=FailureReason.RETRY_EXHAUSTED.value)
                        failure = NetFailure(
                            net_name,
                            FailureReason.RETRY_EXHAUSTED,
                            unconnected_pins=len(
                                diagram.route_for(net_name).failed_pins
                            ),
                        )
                        failed.append(failure)
            plane.release_all_claims()
        else:
            for net_name, reason in first_pass.items():
                if claims_seen.get(net_name):
                    # Foreign claims stood during the only attempt; with
                    # no retry pass to disambiguate, blame them.
                    reason = FailureReason.CLAIM_BLOCKED
                failed.append(
                    NetFailure(
                        net_name,
                        reason,
                        unconnected_pins=len(diagram.route_for(net_name).failed_pins),
                    )
                )

        report.failed_nets = failed
        report.nets_failed = len(failed)
        report.nets_routed = report.nets_total - report.nets_failed
        report.congestion = congestion_snapshot(plane)
        report.search_detail = _search_detail(report)
        report.seconds = time.perf_counter() - started
        root_span.set(
            nets=report.nets_total,
            routed=report.nets_routed,
            failed=report.nets_failed,
        )

    counters.inc("route.runs")
    counters.inc("route.nets", report.nets_total)
    counters.inc("route.nets_routed", report.nets_routed)
    counters.inc("route.nets_failed", report.nets_failed)
    for failure in failed:
        counters.inc(f"route.failure.{failure.reason.value}")
    counters.observe("route.seconds", report.seconds)
    if report.failed_nets:
        get_logger("route.eureka").warning(
            "unroutable nets remain",
            extra={
                "fields": {
                    "failed": report.nets_failed,
                    "reasons": {
                        str(f): f.reason.value for f in report.failed_nets
                    },
                }
            },
        )
    return report


#: Per-connection rows persisted into a run record (the per-net
#: aggregates always cover every net; the row detail keeps the noisiest
#: searches only, so records stay a bounded size).
_DETAIL_ROWS = 200


def _search_detail(report: RoutingReport) -> dict:
    """Aggregate the router's per-connection telemetry into the JSON
    payload ``artwork-inspect explain`` and the HTML report consume."""
    connections = report.search.connections
    failed = {str(f) for f in report.failed_nets}
    nets: dict[str, dict] = {}
    tightness: dict[str, int] = {}
    for row in connections:
        agg = nets.setdefault(
            row.get("net", "?"),
            {
                "connections": 0,
                "pops": 0,
                "pruned": 0,
                "bound_est": 0,
                "escalations": 0,
                "area": 0,
                "seconds": 0.0,
                "failures": 0,
            },
        )
        agg["connections"] += 1
        agg["pops"] += int(row.get("pops", 0))
        agg["pruned"] += int(row.get("pruned", 0))
        bound = row.get("bound")
        agg["bound_est"] += int(bound[0]) if bound else 0
        agg["escalations"] += 1 if row.get("escalated") else 0
        agg["area"] = max(agg["area"], int(row.get("area") or 0))
        agg["seconds"] += float(row.get("seconds", 0.0))
        agg["failures"] += 0 if row.get("found") else 1
        cost = row.get("cost")
        if row.get("found") and bound and cost:
            ratio = (bound[0] + 1) / (cost[0] + 1)
            if ratio >= 1.0:
                bucket = "1.0 (exact)"
            else:
                lo = int(ratio * 10) / 10
                bucket = f"{lo:.1f}-{lo + 0.1:.1f}"
            tightness[bucket] = tightness.get(bucket, 0) + 1
    for name, agg in nets.items():
        agg["seconds"] = round(agg["seconds"], 6)
        agg["outcome"] = "failed" if name in failed else "routed"
    if not nets:
        return {}
    detail_rows = sorted(
        connections, key=lambda r: -int(r.get("pops", 0))
    )[:_DETAIL_ROWS]
    return {
        "nets": nets,
        "connections": detail_rows,
        "bound_tightness": tightness,
        "parallel": list(report.parallel_events),
        "summary": {
            "connections": len(connections),
            "pops": report.search.states_expanded,
            "pruned": report.search.pruned,
            "escalations": report.search.escalations,
            "failures": report.search.failures,
        },
    }


def _routable_nets(diagram: Diagram) -> list[str]:
    """Nets that still need (more) routing: at least two pins and not yet
    fully connected by prerouted geometry."""
    out = []
    for net in diagram.network.nets.values():
        if len(net.pins) < 2:
            continue
        route = diagram.routes.get(net.name)
        if route is not None and route.paths:
            pts = route.points()
            if all(diagram.pin_position(p) in pts for p in net.pins):
                continue  # fully prerouted
        out.append(net.name)
    return out


def _order_nets(diagram: Diagram, names: list[str], order: NetOrder) -> list[str]:
    if order == "input":
        return list(names)

    def span(name: str) -> int:
        positions = [diagram.pin_position(p) for p in diagram.network.nets[name].pins]
        xs = [p.x for p in positions]
        ys = [p.y for p in positions]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    if order == "fewest_pins_first":
        return sorted(names, key=lambda n: (len(diagram.network.nets[n].pins), span(n), n))
    return sorted(names, key=lambda n: (span(n), len(diagram.network.nets[n].pins), n))


def _route_net(
    plane: Plane,
    diagram: Diagram,
    net: Net,
    options: RouterOptions,
    stats: SearchStats,
) -> FailureReason | None:
    """Route one (possibly multipoint, possibly partially prerouted) net.
    Returns ``None`` when every pin ends up connected, otherwise why not."""
    route = diagram.route_for(net.name)
    allow = frozenset(diagram.pin_position(p) for p in net.pins)
    existing = plane.net_points(net.name)

    pending = [p for p in net.pins if diagram.pin_position(p) not in existing]
    connected_any = bool(existing)

    if not connected_any:
        pending = _init_point_to_point(
            plane, diagram, route, net, pending, allow, options, stats
        )
        connected_any = bool(plane.net_points(net.name))
        if not connected_any:
            route.failed_pins = list(pending)
            return FailureReason.NO_INITIAL_PATH

    # EXPAND_NET: connect each remaining pin to the geometry so far,
    # nearest pin first.
    failed: list[Pin] = []
    while pending:
        geometry = plane.net_points(net.name)
        pending.sort(key=lambda p: _distance_to_set(diagram.pin_position(p), geometry))
        pin = pending.pop(0)
        result = _route_pin_to_targets(
            plane, diagram, net, pin, {q: None for q in geometry}, allow, options, stats
        )
        if result is None:
            failed.append(pin)
        else:
            _commit(plane, route, net.name, result)
    route.failed_pins = failed
    return FailureReason.EXPANSION_EXHAUSTED if failed else None


def _init_point_to_point(
    plane: Plane,
    diagram: Diagram,
    route: RoutedNet,
    net: Net,
    pending: list[Pin],
    allow: frozenset[Point],
    options: RouterOptions,
    stats: SearchStats,
) -> list[Pin]:
    """INIT_NET: try pin pairs (closest first) until one pair connects.
    Returns the pins still unconnected afterwards."""
    pairs = sorted(
        (
            (i, j)
            for i in range(len(pending))
            for j in range(i + 1, len(pending))
        ),
        key=lambda ij: diagram.pin_position(pending[ij[0]]).manhattan(
            diagram.pin_position(pending[ij[1]])
        ),
    )
    for i, j in pairs:
        a, b = pending[i], pending[j]
        target = diagram.pin_position(b)
        arrival = _arrival_directions(diagram, b)
        result = _route_pin_to_targets(
            plane, diagram, net, a, {target: arrival}, allow, options, stats
        )
        if result is not None:
            _commit(plane, route, net.name, result)
            return [p for k, p in enumerate(pending) if k not in (i, j)]
    return pending


def _route_pin_to_targets(
    plane: Plane,
    diagram: Diagram,
    net: Net,
    pin: Pin,
    targets: dict[Point, frozenset[Direction] | None],
    allow: frozenset[Point],
    options: RouterOptions,
    stats: SearchStats,
) -> RouteResult | None:
    start = diagram.pin_position(pin)
    if start in targets:
        # Abutting terminals: the pins already share a point; the net is a
        # zero-length connection there.  Nothing on the plane was read, so
        # the footprint is just the point itself.
        return RouteResult(
            path=[start],
            bends=0,
            crossings=0,
            length=0,
            footprint=(start.x, start.y, start.x, start.y),
        )
    side = diagram.pin_side(pin)
    dirs = start_directions_for(side.outward if side is not None else None)
    if not targets:
        return None
    if options.engine == "intervals":
        from .interval_expansion import route_connection_intervals

        return route_connection_intervals(
            plane, net.name, start, dirs, targets, allow=allow, stats=stats
        )
    if options.engine == "reference":
        from .reference import route_connection_reference

        return route_connection_reference(
            plane,
            net.name,
            start,
            dirs,
            targets,
            allow=allow,
            cost_order=options.cost_order,
            stats=stats,
        )
    result = route_connection(
        plane,
        net.name,
        start,
        dirs,
        targets,
        allow=allow,
        cost_order=options.cost_order,
        bidirectional=options.bidirectional,
        stats=stats,
    )
    if options.verify_optimum:
        from .reference import route_connection_reference

        check = route_connection_reference(
            plane,
            net.name,
            start,
            dirs,
            targets,
            allow=allow,
            cost_order=options.cost_order,
        )
        ours = None if result is None else (result.bends, result.crossings, result.length)
        theirs = None if check is None else (check.bends, check.crossings, check.length)
        counters.inc("route.verified_connections")
        if ours != theirs:
            counters.inc("route.verify_mismatch")
            get_logger("route.eureka").error(
                "indexed A* disagrees with reference optimum",
                extra={"fields": {"net": net.name, "astar": ours, "reference": theirs}},
            )
    return result


def _arrival_directions(diagram: Diagram, pin: Pin) -> frozenset[Direction] | None:
    """A wire must arrive at a subsystem terminal moving into the module
    (perpendicular to its side); system terminals accept any arrival."""
    side = diagram.pin_side(pin)
    if side is None:
        return None
    return frozenset({side.outward.opposite})


def _commit(plane: Plane, route: RoutedNet, net_name: str, result: RouteResult) -> None:
    route.add_path(result.path)
    plane.add_net_path(net_name, result.path)


def _distance_to_set(p: Point, points: Iterable[Point]) -> int:
    return min((p.manhattan(q) for q in points), default=1 << 30)


# -- speculative parallel first pass -------------------------------------
#
# ``parallel_nets`` routes conflict-unlikely waves of nets concurrently on
# threads, then commits the results serially in net order.  The output is
# guaranteed identical to the serial router:
#
# * During a wave the plane is read-only (lazy index caches may fill, but
#   concurrent fills compute identical entries from identical inputs, so
#   the race is value-idempotent).  A net's own accumulating geometry
#   lives in a thread-local overlay; the "all minus own" NetView
#   semantics make registering own geometry in the index a no-op for the
#   search, so only the target set needs the overlay.
# * Claim points the serial order would already have released are added
#   to ``allow`` instead.  Claim points are never blocked/used (``
#   add_claim`` refuses such points) and carry no usage, so allowing one
#   is indistinguishable from releasing it.
# * At commit time a net's speculative result is kept only if no wave
#   mate committed geometry inside the net's search *footprint* (the
#   hull of every plane point its searches read).  Outside the
#   footprint, the plane state the speculation saw equals the state the
#   serial router would have seen, and ``route_connection`` is a
#   deterministic function of what it reads — so the kept result is
#   byte-for-byte the serial one.  Conflicted nets are re-routed
#   serially on the spot, in order.

_WAVE_LIMIT = 8
#: Inflation of the pin bounding boxes used to *group* nets into waves.
#: Purely a conflict-likelihood heuristic — correctness comes from the
#: footprint check at commit time, never from this margin.
_WAVE_MARGIN = 4


@dataclass
class _SpecOutcome:
    """What one speculatively routed net produced, staged for commit."""

    paths: list[list[Point]] = field(default_factory=list)
    failed_pins: list[Pin] = field(default_factory=list)
    reason: FailureReason | None = None
    stats: SearchStats = field(default_factory=SearchStats)
    # Union hull of every connection's search footprint.  ``unbounded``
    # when any search failed or escalated to the exact BFS heuristic —
    # those may read the whole reachable plane.
    x1: int = 1 << 60
    y1: int = 1 << 60
    x2: int = -(1 << 60)
    y2: int = -(1 << 60)
    unbounded: bool = False

    def add_footprint(self, fp: tuple[int, int, int, int] | None) -> None:
        if fp is None:
            self.unbounded = True
            return
        a, b, c, d = fp
        if a < self.x1:
            self.x1 = a
        if b < self.y1:
            self.y1 = b
        if c > self.x2:
            self.x2 = c
        if d > self.y2:
            self.y2 = d

    def conflicts_with(self, committed: Iterable[Point]) -> bool:
        """Did any wave mate commit geometry this net's searches read?"""
        if self.unbounded:
            return any(True for _ in committed)
        x1, y1, x2, y2 = self.x1, self.y1, self.x2, self.y2
        return any(x1 <= p.x <= x2 and y1 <= p.y <= y2 for p in committed)


def _merge_stats(into: SearchStats, other: SearchStats) -> None:
    into.states_expanded += other.states_expanded
    into.routes += other.routes
    into.failures += other.failures
    into.pruned += other.pruned
    into.escalations += other.escalations
    for row in other.connections:
        into.record_connection(row)


def _route_net_speculative(
    plane: Plane,
    diagram: Diagram,
    net: Net,
    options: RouterOptions,
    allow_claims: frozenset[Point],
) -> _SpecOutcome:
    """Run exactly the computation :func:`_route_net` would run at the
    current plane state, but commit nothing: paths, failed pins and the
    failure reason are staged in a :class:`_SpecOutcome`.

    ``allow_claims`` neutralises the claim points the serial order would
    already have released (the net's own and its earlier wave mates')."""
    outcome = _SpecOutcome()
    allow = (
        frozenset(diagram.pin_position(p) for p in net.pins) | allow_claims
    )
    own = set(plane.net_points(net.name))

    def record(result: RouteResult) -> None:
        outcome.paths.append(result.path)
        own.update(path_points(normalize_path(result.path)))
        outcome.add_footprint(result.footprint)

    pending = [p for p in net.pins if diagram.pin_position(p) not in own]

    if not own:
        # INIT_NET, staged: same pair order, same first-success commit.
        pairs = sorted(
            (
                (i, j)
                for i in range(len(pending))
                for j in range(i + 1, len(pending))
            ),
            key=lambda ij: diagram.pin_position(pending[ij[0]]).manhattan(
                diagram.pin_position(pending[ij[1]])
            ),
        )
        connected = False
        for i, j in pairs:
            a, b = pending[i], pending[j]
            target = diagram.pin_position(b)
            arrival = _arrival_directions(diagram, b)
            result = _route_pin_to_targets(
                plane,
                diagram,
                net,
                a,
                {target: arrival},
                allow,
                options,
                outcome.stats,
            )
            if result is not None:
                record(result)
                pending = [p for k, p in enumerate(pending) if k not in (i, j)]
                connected = True
                break
            # A failed search explores everything reachable: unbounded.
            outcome.unbounded = True
        if not connected:
            outcome.failed_pins = list(pending)
            outcome.reason = FailureReason.NO_INITIAL_PATH
            return outcome

    failed: list[Pin] = []
    while pending:
        pending.sort(key=lambda p: _distance_to_set(diagram.pin_position(p), own))
        pin = pending.pop(0)
        result = _route_pin_to_targets(
            plane,
            diagram,
            net,
            pin,
            {q: None for q in own},
            allow,
            options,
            outcome.stats,
        )
        if result is None:
            outcome.unbounded = True
            failed.append(pin)
        else:
            record(result)
    outcome.failed_pins = failed
    outcome.reason = FailureReason.EXPANSION_EXHAUSTED if failed else None
    return outcome


def _boxes_overlap(
    a: tuple[int, int, int, int], b: tuple[int, int, int, int]
) -> bool:
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


def _conflict_unlikely_waves(
    diagram: Diagram, todo: list[str]
) -> list[list[str]]:
    """Split the net order into order-contiguous waves whose inflated pin
    bounding boxes are pairwise disjoint.  Contiguity keeps the commit
    order equal to the serial net order; disjointness only makes commit
    conflicts *unlikely* (short nets rarely search far past their pins),
    the footprint check at commit time makes them *harmless*."""
    boxes = []
    for name in todo:
        pts = [
            diagram.pin_position(p) for p in diagram.network.nets[name].pins
        ]
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        boxes.append(
            (
                min(xs) - _WAVE_MARGIN,
                min(ys) - _WAVE_MARGIN,
                max(xs) + _WAVE_MARGIN,
                max(ys) + _WAVE_MARGIN,
            )
        )
    waves: list[list[str]] = []
    i = 0
    while i < len(todo):
        members = [i]
        j = i + 1
        while j < len(todo) and len(members) < _WAVE_LIMIT:
            if any(_boxes_overlap(boxes[k], boxes[j]) for k in members):
                break
            members.append(j)
            j += 1
        waves.append([todo[k] for k in members])
        i = j
    return waves


def _first_pass_parallel(
    plane: Plane,
    diagram: Diagram,
    todo: list[str],
    options: RouterOptions,
    report: RoutingReport,
    first_pass: dict[str, FailureReason],
    claims_seen: dict[str, bool],
) -> None:
    """The first pass of :func:`route_diagram`, waves of nets at a time.

    Produces exactly the serial pass's diagram, plane, report and
    counters (``route.parallel.*`` aside); see the module-level design
    note above for why."""
    nets = diagram.network.nets
    waves = _conflict_unlikely_waves(diagram, todo)
    counters.inc("route.parallel.waves", len(waves))
    workers = min(_WAVE_LIMIT, os.cpu_count() or 1)
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="eureka-wave"
    ) as pool:
        for wave_index, wave in enumerate(waves):
            outcomes: list[_SpecOutcome | None]
            if len(wave) == 1:
                outcomes = [None]  # nothing to overlap with: route serially
            else:
                # Net k speculates as if the claims of wave[0..k] were
                # already released — exactly the serial environment.
                released: set[Point] = set()
                futures = []
                for name in wave:
                    released |= plane.claim_points(
                        claimpoints.claim_owner(name, pin)
                        for pin in nets[name].pins
                    )
                    futures.append(
                        pool.submit(
                            _route_net_speculative,
                            plane,
                            diagram,
                            nets[name],
                            options,
                            frozenset(released),
                        )
                    )
                # The plane stays untouched until every future resolves.
                outcomes = [f.result() for f in futures]

            committed: set[Point] = set()
            for name, outcome in zip(wave, outcomes):
                net = nets[name]
                claimpoints.release_net_claims(plane, name, net.pins)
                with span("eureka.net", net=name) as net_span:
                    if outcome is None or outcome.conflicts_with(committed):
                        if outcome is not None:
                            # The speculative work is discarded but was
                            # really done: keep its stats honest.
                            counters.inc("route.parallel.conflicts")
                            if outcome.paths:
                                counters.inc("route.parallel.rollbacks")
                            report.parallel_events.append(
                                {
                                    "net": name,
                                    "wave": wave_index,
                                    "outcome": "conflict",
                                    "cause": (
                                        "unbounded_footprint"
                                        if outcome.unbounded
                                        else "footprint_overlap"
                                    ),
                                    "rollback": bool(outcome.paths),
                                }
                            )
                            _merge_stats(report.search, outcome.stats)
                        reason = _route_net(
                            plane, diagram, net, options, report.search
                        )
                    else:
                        counters.inc("route.parallel.commits")
                        _merge_stats(report.search, outcome.stats)
                        route = diagram.route_for(name)
                        for path in outcome.paths:
                            route.add_path(path)
                            plane.add_net_path(name, path)
                        route.failed_pins = list(outcome.failed_pins)
                        reason = outcome.reason
                    if reason is not None:
                        net_span.set(failed=reason.value)
                        first_pass[name] = reason
                        claims_seen[name] = bool(plane.claims)
                committed |= plane.net_points(name)
