"""Rip-up-and-reroute: the paper's manual completion flow, automated.

In example 3 the paper finishes the two unroutable LIFE nets by hand:
"After adjusting some nets by hand, the routing program was started again
to complete the diagram."  This module automates that: for every failed
net, rip up the routed nets whose geometry crowds the failed terminals,
then run EUREKA again over everything unrouted.  Repeated a few times
this completes diagrams the single-pass router leaves at 99%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.diagram import Diagram
from ..core.geometry import Point
from .eureka import RouterOptions, route_diagram


@dataclass
class RipupReport:
    """What the completion loop did."""

    iterations: int = 0
    ripped_nets: list[str] = field(default_factory=list)
    still_failed: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.still_failed


def _blockers_near(
    diagram: Diagram, failed_net: str, radius: int, limit: int
) -> list[str]:
    """Routed nets with geometry within ``radius`` of the failed net's
    pins, nearest first."""
    net = diagram.network.nets[failed_net]
    pin_points = [diagram.pin_position(p) for p in net.pins]
    scored: list[tuple[int, str]] = []
    for name, route in diagram.routes.items():
        if name == failed_net or not route.paths:
            continue
        best = min(
            (
                min(abs(q.x - p.x) + abs(q.y - p.y) for p in pin_points)
                for q in _route_vertices(route)
            ),
            default=1 << 30,
        )
        if best <= radius:
            scored.append((best, name))
    scored.sort()
    return [name for _d, name in scored[:limit]]


def _route_vertices(route) -> list[Point]:
    return [p for path in route.paths for p in path]


def reroute_failed(
    diagram: Diagram,
    options: RouterOptions | None = None,
    *,
    max_iterations: int = 4,
    radius: int = 6,
    rip_per_net: int = 4,
) -> RipupReport:
    """Complete a mostly-routed diagram by ripping up local blockers of
    each failed net and rerouting.  Mutates the diagram in place."""
    options = options or RouterOptions()
    report = RipupReport()
    for _ in range(max_iterations):
        failed = [
            name for name, route in diagram.routes.items() if route.failed_pins
        ] + [
            name
            for name in diagram.unrouted_nets
            if name not in diagram.routes or not diagram.routes[name].paths
        ]
        failed = sorted(set(failed))
        if not failed:
            break
        report.iterations += 1
        for name in failed:
            for blocker in _blockers_near(diagram, name, radius, rip_per_net):
                diagram.routes.pop(blocker, None)
                report.ripped_nets.append(blocker)
            diagram.routes.pop(name, None)
        # The previously failed nets route first, onto the freed tracks;
        # the ripped blockers then route around them.
        route_diagram(diagram, options, only_nets=failed)
        route_diagram(diagram, options)
    report.still_failed = sorted(
        set(
            [n for n, r in diagram.routes.items() if r.failed_pins]
            + diagram.unrouted_nets
        )
    )
    return report
