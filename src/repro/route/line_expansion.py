"""The line-expansion router (sections 5.5 and 5.6).

The paper's router expands wavefronts of line segments; the wave number is
the number of bends in the paths reaching the front, and among solutions
with minimum bends it picks minimum crossovers, then minimum wire length
(the ``-s`` option swaps the last two criteria).

We realise exactly that optimisation as a lexicographic shortest-path
search over states ``(point, travel direction)`` on the routing plane:

* continuing straight costs length,
* changing direction costs a bend (wave number + 1) and is only legal at
  points free of foreign wires (a bend on a foreign wire would overlap),
* passing straight across a foreign wire costs a crossover,
* module borders, claimpoints, plane borders and foreign bend/end/branch
  points block (section 5.5.2: "the only obstacles are modules and bends
  in nets").

The search is an *admissible lexicographic A\\**: each state is ordered by
its cost-so-far plus a per-state lower bound of (minimum remaining bends —
0/1/2/3 from the geometric relation of ``(point, direction)`` to the
nearest target — and remaining Manhattan length to the targets' bounding
box).  Both bounds never overestimate, so the first target state popped is
still the paper's exact optimum (bends, then crossings, then length, and
the ``-s`` swap) while states pointing away from every target are pruned.
Like the paper's algorithm (section 5.5.4) the search stays exhaustive: a
connection is found whenever one exists.

Obstacle queries come from the plane's incremental
:class:`~repro.route.index.PlaneIndex` — a per-connection
:class:`~repro.route.index.NetView` overlay built in O(own net) — instead
of the O(plane) snapshot rebuild the pre-index router paid per connection
(that path survives as :mod:`repro.route.reference` for benchmarking and
cross-checking).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.geometry import Direction, Point, normalize_path
from ..obs import counters
from .plane import Plane


class CostOrder(enum.Enum):
    """Tie-break order among minimum-bend paths (Appendix F, option -s)."""

    BENDS_CROSSINGS_LENGTH = "crossings-first"
    BENDS_LENGTH_CROSSINGS = "length-first"

    def key(self, bends: int, crossings: int, length: int) -> tuple[int, int, int]:
        if self is CostOrder.BENDS_CROSSINGS_LENGTH:
            return (bends, crossings, length)
        return (bends, length, crossings)


@dataclass(frozen=True)
class RouteResult:
    """A found connection and its cost."""

    path: list[Point]
    bends: int
    crossings: int
    length: int
    states_expanded: int = 0


@dataclass
class SearchStats:
    """Cumulative search effort (for the complexity experiments)."""

    states_expanded: int = 0
    routes: int = 0
    failures: int = 0
    #: Heap entries skipped as stale/superseded (A* pruning bookkeeping).
    pruned: int = 0


_State = tuple[Point, Direction]


#: (dx, dy, moves_horizontally) per direction, and the opposite's index.
_DIR_ORDER = [Direction.LEFT, Direction.RIGHT, Direction.UP, Direction.DOWN]
_DIR_STEPS = [(d.dx, d.dy, d.dy == 0) for d in _DIR_ORDER]
_DIR_INDEX = {d: i for i, d in enumerate(_DIR_ORDER)}
_OPPOSITE = [1, 0, 3, 2]


def route_connection(
    plane: Plane,
    net: str,
    start: Point,
    start_directions: Iterable[Direction],
    targets: Mapping[Point, frozenset[Direction] | None] | Iterable[Point],
    *,
    allow: frozenset[Point] = frozenset(),
    cost_order: CostOrder = CostOrder.BENDS_CROSSINGS_LENGTH,
    stats: SearchStats | None = None,
) -> RouteResult | None:
    """Find the best path of ``net`` from ``start`` to any target point.

    ``start_directions`` are the legal directions for the first wire
    segment (perpendicular to and away from the module side for subsystem
    terminals, all four for system terminals, section 5.6.3).

    ``targets`` maps target points to the set of arrival directions that
    are acceptable there (``None`` for any); a bare iterable of points
    accepts any arrival direction.

    Returns ``None`` when no connection exists — and only then.
    """
    if not isinstance(targets, Mapping):
        targets = {p: None for p in targets}
    if not targets:
        return None
    start_directions = list(start_directions)
    view = plane.index.view(net, allow)
    if start in targets:
        # Zero-length connection: legal only under the same acceptance
        # rule as the main loop — the target must carry no foreign wire
        # and its arrival constraint must admit a start direction.
        dirs = targets[start]
        if (
            dirs is None or any(d in dirs for d in start_directions)
        ) and not view.foreign_at(start):
            return RouteResult(path=[start], bends=0, crossings=0, length=0)

    # Arrival constraints plus the target geometry the heuristic needs:
    # bounding box and per-row/per-column extents.
    target_dirs: dict[tuple[int, int], frozenset[int] | None] = {}
    t_rows: dict[int, tuple[int, int]] = {}
    t_cols: dict[int, tuple[int, int]] = {}
    tx1 = ty1 = 1 << 60
    tx2 = ty2 = -(1 << 60)
    for p, dirs in targets.items():
        tx, ty = p.x, p.y
        target_dirs[(tx, ty)] = (
            None if dirs is None else frozenset(_DIR_INDEX[d] for d in dirs)
        )
        mm = t_rows.get(ty)
        t_rows[ty] = (
            (tx, tx) if mm is None else (tx if tx < mm[0] else mm[0], tx if tx > mm[1] else mm[1])
        )
        mm = t_cols.get(tx)
        t_cols[tx] = (
            (ty, ty) if mm is None else (ty if ty < mm[0] else mm[0], ty if ty > mm[1] else mm[1])
        )
        if tx < tx1:
            tx1 = tx
        if tx > tx2:
            tx2 = tx
        if ty < ty1:
            ty1 = ty
        if ty > ty2:
            ty2 = ty

    crossings_first = cost_order is CostOrder.BENDS_CROSSINGS_LENGTH
    x1, y1, x2, y2 = view.x1, view.y1, view.x2, view.y2
    hard_blocked = view.blocked
    hard_claims = view.claims
    blocked = (view.blocked_h, view.blocked_v)
    unblock = (view.unblock_h, view.unblock_v)
    cross_tot = (view.cross_h, view.cross_v)
    own_cross = (view.own_cross_h, view.own_cross_v)
    occ_pts = view.occ_pts
    self_clear = view.self_clear

    def heur(qx: int, qy: int, di: int) -> tuple[int, int]:
        """Admissible (remaining bends, remaining length) lower bound for
        state ``((qx, qy), direction di)`` against the whole target set."""
        # Manhattan distance to the targets' bounding box.
        hl = 0
        if qx < tx1:
            hl = tx1 - qx
        elif qx > tx2:
            hl = qx - tx2
        if qy < ty1:
            hl += ty1 - qy
        elif qy > ty2:
            hl += qy - ty2
        # Minimum bends from the geometric relation to the nearest target:
        # 0 when one lies straight ahead, 1 when one is not strictly
        # behind, 2 when all are behind but one is off this line, 3 when
        # every target is strictly behind on the travel line itself.
        if di == 0:  # LEFT
            mm = t_rows.get(qy)
            if mm is not None and mm[0] <= qx:
                return 0, hl
            if tx1 <= qx:
                return 1, hl
            off_line = ty1 != qy or ty2 != qy
        elif di == 1:  # RIGHT
            mm = t_rows.get(qy)
            if mm is not None and mm[1] >= qx:
                return 0, hl
            if tx2 >= qx:
                return 1, hl
            off_line = ty1 != qy or ty2 != qy
        elif di == 2:  # UP
            mm = t_cols.get(qx)
            if mm is not None and mm[1] >= qy:
                return 0, hl
            if ty2 >= qy:
                return 1, hl
            off_line = tx1 != qx or tx2 != qx
        else:  # DOWN
            mm = t_cols.get(qx)
            if mm is not None and mm[0] <= qy:
                return 0, hl
            if ty1 <= qy:
                return 1, hl
            off_line = tx1 != qx or tx2 != qx
        return (2 if off_line else 3), hl

    counter = 0
    heap: list = []
    # state key: (x, y, dir_index) -> best cost-so-far tuple (key order)
    best: dict[tuple[int, int, int], tuple[int, int, int]] = {}
    parents: dict[tuple[int, int, int], tuple[int, int, int] | None] = {}
    sx, sy = start.x, start.y
    zero = (0, 0, 0)
    for d in start_directions:
        di = _DIR_INDEX[d]
        state = (sx, sy, di)
        best[state] = zero
        parents[state] = None
        hb, hl = heur(sx, sy, di)
        f = (hb, 0, hl) if crossings_first else (hb, hl, 0)
        heapq.heappush(heap, (f, counter, zero, state))
        counter += 1

    expanded = 0
    pruned = 0
    goal_state = None
    goal_cost = None
    heappush, heappop = heapq.heappush, heapq.heappop

    while heap:
        _f, _, cost, state = heappop(heap)
        if cost != best.get(state):
            pruned += 1  # stale entry, superseded by a better push
            continue
        expanded += 1
        px, py, di = state

        point_key = (px, py)
        arrival_ok = target_dirs.get(point_key, _MISSING)
        if arrival_ok is not _MISSING and parents[state] is not None:
            if (arrival_ok is None or di in arrival_ok) and (
                point_key not in occ_pts or point_key in self_clear
            ):
                goal_state, goal_cost = state, cost
                break

        can_turn = point_key not in occ_pts or point_key in self_clear
        c0, c1, c2 = cost
        for ndi in range(4):
            if ndi == _OPPOSITE[di]:
                continue
            turning = ndi != di
            if turning and not can_turn:
                continue
            dx, dy, moves_h = _DIR_STEPS[ndi]
            qx, qy = px + dx, py + dy
            if not (x1 <= qx <= x2 and y1 <= qy <= y2):
                continue
            q = (qx, qy)
            if (q in hard_blocked or q in hard_claims) and q not in allow:
                continue
            axis = 0 if moves_h else 1
            if q in blocked[axis] and q not in unblock[axis]:
                continue
            cross = cross_tot[axis].get(q, 0)
            if cross:
                cross -= own_cross[axis].get(q, 0)
            if crossings_first:
                ncost = (c0 + turning, c1 + cross, c2 + 1)
            else:
                ncost = (c0 + turning, c1 + 1, c2 + cross)
            nstate = (qx, qy, ndi)
            old = best.get(nstate)
            if old is None or ncost < old:
                best[nstate] = ncost
                parents[nstate] = state
                hb, hl = heur(qx, qy, ndi)
                if crossings_first:
                    f = (ncost[0] + hb, ncost[1], ncost[2] + hl)
                else:
                    f = (ncost[0] + hb, ncost[1] + hl, ncost[2])
                heappush(heap, (f, counter, ncost, nstate))
                counter += 1

    if stats is not None:
        stats.states_expanded += expanded
        stats.pruned += pruned
        stats.routes += 1
        if goal_state is None:
            stats.failures += 1
    counters.inc("route.connections")
    counters.inc("route.expansions", expanded)
    counters.inc("route.astar_pruned", pruned)
    counters.observe("route.expansions_per_connection", expanded)
    if goal_state is None or goal_cost is None:
        counters.inc("route.connection_failures")
        return None

    path: list[Point] = []
    cursor = goal_state
    while cursor is not None:
        path.append(Point(cursor[0], cursor[1]))
        cursor = parents[cursor]
    path.reverse()
    bends, crossings, length = _unkey(goal_cost, cost_order)
    return RouteResult(
        path=normalize_path(path),
        bends=bends,
        crossings=crossings,
        length=length,
        states_expanded=expanded,
    )


_MISSING = object()
_INF = (1 << 60, 1 << 60, 1 << 60)


def _unkey(
    cost: tuple[int, int, int], order: CostOrder
) -> tuple[int, int, int]:
    """Invert :meth:`CostOrder.key` back to (bends, crossings, length)."""
    if order is CostOrder.BENDS_CROSSINGS_LENGTH:
        return cost
    bends, length, crossings = cost
    return (bends, crossings, length)


def start_directions_for(side_outward: Direction | None) -> list[Direction]:
    """Initial expansion directions for a terminal (INIT_ACTIVES):
    subsystem terminals leave perpendicular to their module side, system
    terminals expand in all four directions."""
    if side_outward is None:
        return list(Direction)
    return [side_outward]
