"""The line-expansion router (sections 5.5 and 5.6).

The paper's router expands wavefronts of line segments; the wave number is
the number of bends in the paths reaching the front, and among solutions
with minimum bends it picks minimum crossovers, then minimum wire length
(the ``-s`` option swaps the last two criteria).

We realise exactly that optimisation as a lexicographic shortest-path
search over states ``(point, travel direction)`` on the routing plane:

* continuing straight costs length,
* changing direction costs a bend (wave number + 1) and is only legal at
  points free of foreign wires (a bend on a foreign wire would overlap),
* passing straight across a foreign wire costs a crossover,
* module borders, claimpoints, plane borders and foreign bend/end/branch
  points block (section 5.5.2: "the only obstacles are modules and bends
  in nets").

The search is an *admissible lexicographic A\\**: each state is ordered by
its cost-so-far plus a per-state lower bound of (minimum remaining bends —
0/1/2/3 from the geometric relation of ``(point, direction)`` to the
nearest target —, minimum remaining crossings, and remaining Manhattan
length to the targets' bounding box).  The crossing bound is
*crossover-aware*: when zero or one bend suffices, every minimum-bend
completion must sweep a straight run to (or towards) a nearest target, and
the index's per-row/column crossing prefix sums price that run exactly
(minus the net's own contributions) in O(log row).  The bound only has to
hold among minimum-bend completions — paths with more bends already lose
on the first lexicographic component — and range sums over nested
intervals only grow, so truncating at the *nearest* target keeps it a
lower bound.  No bound ever overestimates, so the first target state
popped is still the paper's exact optimum (bends, then crossings, then
length, and the ``-s`` swap) while states pointing away from every target
— or staring at a wall of foreign wires — are pruned.
Like the paper's algorithm (section 5.5.4) the search stays exhaustive: a
connection is found whenever one exists.

Obstacle queries come from the plane's incremental
:class:`~repro.route.index.PlaneIndex` — a per-connection
:class:`~repro.route.index.NetView` overlay built in O(own net) — instead
of the O(plane) snapshot rebuild the pre-index router paid per connection
(that path survives as :mod:`repro.route.reference` for benchmarking and
cross-checking).
"""

from __future__ import annotations

import enum
import heapq
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.geometry import Direction, Point, normalize_path
from ..obs import counters
from .index import _prefix_entry
from .plane import Plane


class CostOrder(enum.Enum):
    """Tie-break order among minimum-bend paths (Appendix F, option -s)."""

    BENDS_CROSSINGS_LENGTH = "crossings-first"
    BENDS_LENGTH_CROSSINGS = "length-first"

    def key(self, bends: int, crossings: int, length: int) -> tuple[int, int, int]:
        if self is CostOrder.BENDS_CROSSINGS_LENGTH:
            return (bends, crossings, length)
        return (bends, length, crossings)


@dataclass(frozen=True)
class RouteResult:
    """A found connection and its cost."""

    path: list[Point]
    bends: int
    crossings: int
    length: int
    states_expanded: int = 0
    #: Inclusive (x1, y1, x2, y2) hull of every plane point the search
    #: read — expanded states inflated by one (push-time neighbor and
    #: heuristic probes) unioned with the start and target boxes.  A
    #: foreign wire added strictly outside this hull cannot have changed
    #: the result, which is what speculative parallel routing checks
    #: before committing.  ``None`` means unbounded (the escalated BFS
    #: bound reads the whole reachable plane).
    footprint: tuple[int, int, int, int] | None = None


#: Per-connection telemetry rows kept on one :class:`SearchStats` —
#: enough for every net of the biggest bench workloads; beyond it the
#: noisiest rows are already in, so further ones are dropped.
MAX_CONNECTION_ROWS = 4096


@dataclass
class SearchStats:
    """Cumulative search effort (for the complexity experiments)."""

    states_expanded: int = 0
    routes: int = 0
    failures: int = 0
    #: Heap entries skipped as stale/superseded (A* pruning bookkeeping).
    pruned: int = 0
    #: Connections that escalated to the exact BFS bend-distance bound.
    escalations: int = 0
    #: Per-connection introspection rows ("why was this net slow") —
    #: pops vs the initial bound estimate, escalation, footprint area,
    #: final cost.  Bounded by :data:`MAX_CONNECTION_ROWS`.
    connections: list[dict] = field(default_factory=list)

    def record_connection(self, row: dict) -> None:
        if len(self.connections) < MAX_CONNECTION_ROWS:
            self.connections.append(row)


_State = tuple[Point, Direction]


#: (dx, dy, moves_horizontally) per direction, and the opposite's index.
_DIR_ORDER = [Direction.LEFT, Direction.RIGHT, Direction.UP, Direction.DOWN]
_DIR_STEPS = [(d.dx, d.dy, d.dy == 0) for d in _DIR_ORDER]
_DIR_INDEX = {d: i for i, d in enumerate(_DIR_ORDER)}
_OPPOSITE = [1, 0, 3, 2]

#: Pops a connection may spend under the geometric bound before the
#: search escalates to the exact BFS bend-distance heuristic.
_ESCALATE_AFTER = 256


def route_connection(
    plane: Plane,
    net: str,
    start: Point,
    start_directions: Iterable[Direction],
    targets: Mapping[Point, frozenset[Direction] | None] | Iterable[Point],
    *,
    allow: frozenset[Point] = frozenset(),
    extra_hard: frozenset[Point] = frozenset(),
    cost_order: CostOrder = CostOrder.BENDS_CROSSINGS_LENGTH,
    bidirectional: bool = False,
    stats: SearchStats | None = None,
) -> RouteResult | None:
    """Find the best path of ``net`` from ``start`` to any target point.

    ``start_directions`` are the legal directions for the first wire
    segment (perpendicular to and away from the module side for subsystem
    terminals, all four for system terminals, section 5.6.3).

    ``targets`` maps target points to the set of arrival directions that
    are acceptable there (``None`` for any); a bare iterable of points
    accepts any arrival direction.

    ``extra_hard`` adds caller-owned forbidden points on top of the
    plane's own obstacles (speculative parallel routing passes the claim
    points of concurrently routing nets here).

    Returns ``None`` when no connection exists — and only then.
    """
    if not isinstance(targets, Mapping):
        targets = {p: None for p in targets}
    if not targets:
        return None
    start_directions = list(start_directions)
    view = plane.index.view(net, allow, extra_hard)
    if start in targets:
        # Zero-length connection: legal only under the same acceptance
        # rule as the main loop — the target must carry no foreign wire
        # and its arrival constraint must admit a start direction.
        dirs = targets[start]
        if (
            dirs is None or any(d in dirs for d in start_directions)
        ) and not view.foreign_at(start):
            return RouteResult(
                path=[start],
                bends=0,
                crossings=0,
                length=0,
                footprint=(start.x - 1, start.y - 1, start.x + 1, start.y + 1),
            )

    # Arrival constraints plus the target geometry the heuristic needs:
    # bounding box and sorted per-row/per-column target coordinates.
    target_dirs: dict[tuple[int, int], frozenset[int] | None] = {}
    t_in_row: dict[int, list[int]] = {}
    t_in_col: dict[int, list[int]] = {}
    tx1 = ty1 = 1 << 60
    tx2 = ty2 = -(1 << 60)
    for p, dirs in targets.items():
        tx, ty = p.x, p.y
        target_dirs[(tx, ty)] = (
            None if dirs is None else frozenset(_DIR_INDEX[d] for d in dirs)
        )
        t_in_row.setdefault(ty, []).append(tx)
        t_in_col.setdefault(tx, []).append(ty)
        if tx < tx1:
            tx1 = tx
        if tx > tx2:
            tx2 = tx
        if ty < ty1:
            ty1 = ty
        if ty > ty2:
            ty2 = ty
    for lst in t_in_row.values():
        lst.sort()
    for lst in t_in_col.values():
        lst.sort()
    t_rows_sorted = sorted(t_in_row)  # rows containing a target
    t_cols_sorted = sorted(t_in_col)  # columns containing a target

    crossings_first = cost_order is CostOrder.BENDS_CROSSINGS_LENGTH
    x1, y1, x2, y2 = view.x1, view.y1, view.x2, view.y2
    hard_blocked = view.blocked
    hard_claims = view.claims
    blocked = (view.blocked_h, view.blocked_v)
    unblock = (view.unblock_h, view.unblock_v)
    cross_tot = (view.cross_h, view.cross_v)
    own_cross = (view.own_cross_h, view.own_cross_v)
    occ_pts = view.occ_pts
    self_clear = view.self_clear

    # -- crossover-aware bound plumbing ---------------------------------
    # The index prices a straight run's crossings over all nets; the
    # net's own contributions are subtracted with per-connection prefix
    # structures over the (small) own-crossing overlays.
    index = plane.index
    range_cross_h = index.range_cross_h
    range_cross_v = index.range_cross_v
    own_h_rows: dict[int, dict[int, int]] = {}
    for p, c in view.own_cross_h.items():
        own_h_rows.setdefault(p.y, {})[p.x] = c
    own_v_cols: dict[int, dict[int, int]] = {}
    for p, c in view.own_cross_v.items():
        own_v_cols.setdefault(p.x, {})[p.y] = c
    own_h_cache: dict[int, tuple[list[int], list[int]]] = {}
    own_v_cache: dict[int, tuple[list[int], list[int]]] = {}

    def _hrange(y: int, a: int, b: int) -> int:
        """Foreign crossings a horizontal run entering ``x in [a..b]``
        on row ``y`` must pay."""
        total = range_cross_h(y, a, b)
        if total and y in own_h_rows:
            entry = own_h_cache.get(y)
            if entry is None:
                entry = own_h_cache[y] = _prefix_entry(own_h_rows[y])
            coords, sums = entry
            total -= sums[bisect_right(coords, b)] - sums[bisect_left(coords, a)]
        return total

    def _vrange(x: int, a: int, b: int) -> int:
        total = range_cross_v(x, a, b)
        if total and x in own_v_cols:
            entry = own_v_cache.get(x)
            if entry is None:
                entry = own_v_cache[x] = _prefix_entry(own_v_cols[x])
            coords, sums = entry
            total -= sums[bisect_right(coords, b)] - sums[bisect_left(coords, a)]
        return total

    # Per-line *stop* coordinates for this net: the index's obstacle
    # coords filtered by the view's exemptions (own wire, ``allow``)
    # once per touched line, then bisected.  A straight run cannot pass
    # its first stop, which upgrades the bend bound behind walls.
    # ``extra_hard`` points missing from the index only overestimate
    # reachability — the safe direction for a lower bound.
    stop_rows: dict[int, list[int]] = {}
    stop_cols: dict[int, list[int]] = {}
    view_stops = view._stops

    def _stops_row(y: int) -> list[int]:
        lst = stop_rows.get(y)
        if lst is None:
            lst = stop_rows[y] = [
                x for x in index.sorted_row(y) if view_stops(Point(x, y), False)
            ]
        return lst

    def _stops_col(x: int) -> list[int]:
        lst = stop_cols.get(x)
        if lst is None:
            lst = stop_cols[x] = [
                y for y in index.sorted_col(x) if view_stops(Point(x, y), True)
            ]
        return lst

    def _hc1_horiz(qx: int, qy: int, sgn: int, lim: int | None) -> int | None:
        """Crossing bound over the exactly-one-bend completions when
        travel is horizontal — or ``None`` when no such completion can
        exist.  Every 1-bend completion either bends *here* (family A —
        a vertical run in this column to a target row, needs a bendable
        point and a reachable target) or sweeps on and bends ahead
        (family B — a horizontal run at least to the nearest reachable
        target column ahead, bounded by the first stop ``lim``)."""
        best = None
        if (qx, qy) not in occ_pts or (qx, qy) in self_clear:
            col = t_in_col.get(qx)
            if col:
                scol = _stops_col(qx)
                i = bisect_left(col, qy + 1)
                if i < len(col):
                    ty = col[i]
                    j = bisect_right(scol, qy)
                    if j >= len(scol) or ty < scol[j]:
                        best = _vrange(qx, qy + 1, ty)
                i = bisect_right(col, qy - 1) - 1
                if i >= 0:
                    ty = col[i]
                    j = bisect_left(scol, qy) - 1
                    if j < 0 or ty > scol[j]:
                        c = _vrange(qx, ty, qy - 1)
                        if best is None or c < best:
                            best = c
        if sgn > 0:
            i = bisect_left(t_cols_sorted, qx + 1)
            if i < len(t_cols_sorted):
                c_near = t_cols_sorted[i]
                if lim is None or c_near < lim:
                    c = _hrange(qy, qx + 1, c_near)
                    if best is None or c < best:
                        best = c
        else:
            i = bisect_right(t_cols_sorted, qx - 1) - 1
            if i >= 0:
                c_near = t_cols_sorted[i]
                if lim is None or c_near > lim:
                    c = _hrange(qy, c_near, qx - 1)
                    if best is None or c < best:
                        best = c
        return best

    def _hc1_vert(qx: int, qy: int, sgn: int, lim: int | None) -> int | None:
        best = None
        if (qx, qy) not in occ_pts or (qx, qy) in self_clear:
            row = t_in_row.get(qy)
            if row:
                srow = _stops_row(qy)
                i = bisect_left(row, qx + 1)
                if i < len(row):
                    tx = row[i]
                    j = bisect_right(srow, qx)
                    if j >= len(srow) or tx < srow[j]:
                        best = _hrange(qy, qx + 1, tx)
                i = bisect_right(row, qx - 1) - 1
                if i >= 0:
                    tx = row[i]
                    j = bisect_left(srow, qx) - 1
                    if j < 0 or tx > srow[j]:
                        c = _hrange(qy, tx, qx - 1)
                        if best is None or c < best:
                            best = c
        if sgn > 0:
            i = bisect_left(t_rows_sorted, qy + 1)
            if i < len(t_rows_sorted):
                r_near = t_rows_sorted[i]
                if lim is None or r_near < lim:
                    c = _vrange(qx, qy + 1, r_near)
                    if best is None or c < best:
                        best = c
        else:
            i = bisect_right(t_rows_sorted, qy - 1) - 1
            if i >= 0:
                r_near = t_rows_sorted[i]
                if lim is None or r_near > lim:
                    c = _vrange(qx, r_near, qy - 1)
                    if best is None or c < best:
                        best = c
        return best

    def heur(qx: int, qy: int, di: int) -> tuple[int, int, int]:
        """Admissible (remaining bends, crossings, length) lower bound
        for state ``((qx, qy), direction di)`` against the whole target
        set.  The crossing component only has to hold among completions
        with exactly the minimum bends — bendier completions already
        lose on the first lexicographic component."""
        # Manhattan distance to the targets' bounding box.
        hl = 0
        if qx < tx1:
            hl = tx1 - qx
        elif qx > tx2:
            hl = qx - tx2
        if qy < ty1:
            hl += ty1 - qy
        elif qy > ty2:
            hl += qy - ty2
        # Minimum bends from the geometric relation to the nearest
        # *reachable* target: 0 when one lies straight ahead of the
        # first stop, 1 when a one-bend family A/B completion survives
        # the stop tests, else 2 (3 when every target is strictly behind
        # on the travel line itself).
        if di == 0:  # LEFT
            srow = _stops_row(qy)
            j = bisect_left(srow, qx) - 1
            lim = srow[j] if j >= 0 else None
            row = t_in_row.get(qy)
            if row is not None and row[0] <= qx:
                i = bisect_right(row, qx) - 1
                tx = row[i]
                if lim is None or tx > lim:
                    return 0, _hrange(qy, tx, qx - 1), hl
            if tx1 <= qx:
                hc = _hc1_horiz(qx, qy, -1, lim)
                if hc is not None:
                    return 1, hc, hl
                return 2, 0, hl
            off_line = ty1 != qy or ty2 != qy
        elif di == 1:  # RIGHT
            srow = _stops_row(qy)
            j = bisect_right(srow, qx)
            lim = srow[j] if j < len(srow) else None
            row = t_in_row.get(qy)
            if row is not None and row[-1] >= qx:
                i = bisect_left(row, qx)
                tx = row[i]
                if lim is None or tx < lim:
                    return 0, _hrange(qy, qx + 1, tx), hl
            if tx2 >= qx:
                hc = _hc1_horiz(qx, qy, +1, lim)
                if hc is not None:
                    return 1, hc, hl
                return 2, 0, hl
            off_line = ty1 != qy or ty2 != qy
        elif di == 2:  # UP
            scol = _stops_col(qx)
            j = bisect_right(scol, qy)
            lim = scol[j] if j < len(scol) else None
            col = t_in_col.get(qx)
            if col is not None and col[-1] >= qy:
                i = bisect_left(col, qy)
                ty = col[i]
                if lim is None or ty < lim:
                    return 0, _vrange(qx, qy + 1, ty), hl
            if ty2 >= qy:
                hc = _hc1_vert(qx, qy, +1, lim)
                if hc is not None:
                    return 1, hc, hl
                return 2, 0, hl
            off_line = tx1 != qx or tx2 != qx
        else:  # DOWN
            scol = _stops_col(qx)
            j = bisect_left(scol, qy) - 1
            lim = scol[j] if j >= 0 else None
            col = t_in_col.get(qx)
            if col is not None and col[0] <= qy:
                i = bisect_right(col, qy) - 1
                ty = col[i]
                if lim is None or ty > lim:
                    return 0, _vrange(qx, ty, qy - 1), hl
            if ty1 <= qy:
                hc = _hc1_vert(qx, qy, -1, lim)
                if hc is not None:
                    return 1, hc, hl
                return 2, 0, hl
            off_line = tx1 != qx or tx2 != qx
        return (2 if off_line else 3), 0, hl

    counter = 0
    heap: list = []
    # state key: (x, y, dir_index) -> best cost-so-far tuple (key order)
    best: dict[tuple[int, int, int], tuple[int, int, int]] = {}
    parents: dict[tuple[int, int, int], tuple[int, int, int] | None] = {}
    sx, sy = start.x, start.y
    zero = (0, 0, 0)
    t_search = time.perf_counter()
    initial_bound: tuple[int, int, int] | None = None
    for d in start_directions:
        di = _DIR_INDEX[d]
        state = (sx, sy, di)
        best[state] = zero
        parents[state] = None
        hb, hc, hl = heur(sx, sy, di)
        f = (hb, hc, hl) if crossings_first else (hb, hl, hc)
        if initial_bound is None or f < initial_bound:
            initial_bound = f
        heapq.heappush(heap, (f, counter, zero, state))
        counter += 1

    expanded = 0
    pruned = 0
    goal_state = None
    goal_cost = None
    heappush, heappop = heapq.heappush, heapq.heappop

    if bidirectional:
        return _route_bidirectional(
            heap,
            best,
            parents,
            counter,
            target_dirs,
            heur,
            (_stops_row, _stops_col, _hrange, _vrange),
            (sx, sy),
            frozenset(_DIR_INDEX[d] for d in start_directions),
            allow,
            extra_hard,
            view,
            crossings_first,
            cost_order,
            stats,
        )

    # -- escalation: exact bend-distance lower bound --------------------
    # Most connections finish in a few hundred pops under the geometric
    # bound, but its bend component saturates at 3 while congested
    # connections need 4-11 bends, so the search degenerates towards
    # uniform-cost on the expensive tail.  Such a connection escalates:
    # a line-expansion 0-1 BFS from the target set computes the *exact*
    # minimum remaining bends for every reachable (point, axis) —
    # relaxed only by ignoring U-turn bans and ``extra_hard``, both the
    # admissible direction — and the search restarts under the stronger
    # bound.  Expansions spent before the restart stay counted; the
    # budget keeps that waste small against the tail it removes.

    def _bend_distance() -> tuple[
        dict[tuple[int, int], int], dict[tuple[int, int], int]
    ]:
        dist_h: dict[tuple[int, int], int] = {}
        dist_v: dict[tuple[int, int], int] = {}
        cur_h: list[tuple[int, int]] = []
        cur_v: list[tuple[int, int]] = []
        # Seeds mirror the goal-acceptance rule, per arrival axis, so
        # every acceptable goal state reads distance 0.
        for pk, dirs in target_dirs.items():
            if pk in occ_pts and pk not in self_clear:
                continue
            if pk in extra_hard:
                continue
            if (pk in hard_blocked or pk in hard_claims) and pk not in allow:
                continue
            for tdi in range(4) if dirs is None else dirs:
                if _DIR_STEPS[tdi][2]:
                    if pk not in blocked[0] or pk in unblock[0]:
                        cur_h.append(pk)
                else:
                    if pk not in blocked[1] or pk in unblock[1]:
                        cur_v.append(pk)
        level = 0
        while cur_h or cur_v:
            nxt_h: list[tuple[int, int]] = []
            nxt_v: list[tuple[int, int]] = []
            # Straight propagation along a free interval is one "line"
            # (bend-free, so the whole interval joins this level); a
            # bendable swept point spawns the perpendicular axis at
            # level + 1.  Any visited point implies its whole interval
            # is visited, so each (point, axis) is swept exactly once.
            for pk in cur_h:
                if pk in dist_h:
                    continue
                px, py = pk
                srow = _stops_row(py)
                j = bisect_left(srow, px)
                lo = srow[j - 1] + 1 if j > 0 else x1
                hi = srow[j] - 1 if j < len(srow) else x2
                for x in range(lo, hi + 1):
                    key = (x, py)
                    dist_h[key] = level
                    if key not in dist_v and (
                        key not in occ_pts or key in self_clear
                    ):
                        nxt_v.append(key)
            for pk in cur_v:
                if pk in dist_v:
                    continue
                px, py = pk
                scol = _stops_col(px)
                j = bisect_left(scol, py)
                lo = scol[j - 1] + 1 if j > 0 else y1
                hi = scol[j] - 1 if j < len(scol) else y2
                for y in range(lo, hi + 1):
                    key = (px, y)
                    dist_v[key] = level
                    if key not in dist_h and (
                        key not in occ_pts or key in self_clear
                    ):
                        nxt_h.append(key)
            cur_h, cur_v = nxt_h, nxt_v
            level += 1
        return dist_h, dist_v

    dist_h: dict[tuple[int, int], int] = {}
    dist_v: dict[tuple[int, int], int] = {}

    def heur_exact(qx: int, qy: int, di: int) -> tuple[int, int, int] | None:
        """The geometric/crossover bound upgraded by the BFS bend
        distance; ``None`` prunes states the relaxed BFS cannot reach
        (then no real completion exists either)."""
        hb, hc, hl = heur(qx, qy, di)
        key = (qx, qy)
        if _DIR_STEPS[di][2]:
            d_straight = dist_h.get(key)
            d_turn = dist_v.get(key)
        else:
            d_straight = dist_v.get(key)
            d_turn = dist_h.get(key)
        cand = d_straight
        if d_turn is not None and (key not in occ_pts or key in self_clear):
            dt = d_turn + 1
            if cand is None or dt < cand:
                cand = dt
        if cand is None:
            return None
        if cand > hb:
            return cand, 0, hl
        return hb, hc, hl

    cur_heur: object = heur
    escalated = False
    # Search-footprint hull: every read the search performs stays within
    # the expanded states (plus one for push-time probes) and the
    # start/target hull the heuristic ranges towards.
    fx1, fy1 = min(sx, tx1), min(sy, ty1)
    fx2, fy2 = max(sx, tx2), max(sy, ty2)

    while heap:
        if not escalated and expanded >= _ESCALATE_AFTER:
            escalated = True
            bfs_h, bfs_v = _bend_distance()
            dist_h.update(bfs_h)
            dist_v.update(bfs_v)
            cur_heur = heur_exact
            counters.inc("route.heur_escalations")
            if stats is not None:
                stats.escalations += 1
            heap = []
            best = {}
            parents = {}
            for d in start_directions:
                di = _DIR_INDEX[d]
                state = (sx, sy, di)
                best[state] = zero
                parents[state] = None
                hbl = heur_exact(sx, sy, di)
                if hbl is None:
                    continue
                hb, hc, hl = hbl
                f = (hb, hc, hl) if crossings_first else (hb, hl, hc)
                heappush(heap, (f, counter, zero, state))
                counter += 1
            if not heap:
                break
        _f, _, cost, state = heappop(heap)
        if cost != best.get(state):
            pruned += 1  # stale entry, superseded by a better push
            continue
        expanded += 1
        px, py, di = state
        if px < fx1:
            fx1 = px
        elif px > fx2:
            fx2 = px
        if py < fy1:
            fy1 = py
        elif py > fy2:
            fy2 = py

        point_key = (px, py)
        arrival_ok = target_dirs.get(point_key, _MISSING)
        if arrival_ok is not _MISSING and parents[state] is not None:
            if (arrival_ok is None or di in arrival_ok) and (
                point_key not in occ_pts or point_key in self_clear
            ):
                goal_state, goal_cost = state, cost
                break

        can_turn = point_key not in occ_pts or point_key in self_clear
        c0, c1, c2 = cost
        for ndi in range(4):
            if ndi == _OPPOSITE[di]:
                continue
            turning = ndi != di
            if turning and not can_turn:
                continue
            dx, dy, moves_h = _DIR_STEPS[ndi]
            qx, qy = px + dx, py + dy
            if not (x1 <= qx <= x2 and y1 <= qy <= y2):
                continue
            q = (qx, qy)
            if q in extra_hard:
                continue
            if (q in hard_blocked or q in hard_claims) and q not in allow:
                continue
            axis = 0 if moves_h else 1
            if q in blocked[axis] and q not in unblock[axis]:
                continue
            cross = cross_tot[axis].get(q, 0)
            if cross:
                cross -= own_cross[axis].get(q, 0)
            if crossings_first:
                ncost = (c0 + turning, c1 + cross, c2 + 1)
            else:
                ncost = (c0 + turning, c1 + 1, c2 + cross)
            nstate = (qx, qy, ndi)
            old = best.get(nstate)
            if old is None or ncost < old:
                hhl = cur_heur(qx, qy, ndi)
                if hhl is None:
                    continue
                best[nstate] = ncost
                parents[nstate] = state
                hb, hc, hl = hhl
                if crossings_first:
                    f = (ncost[0] + hb, ncost[1] + hc, ncost[2] + hl)
                else:
                    f = (ncost[0] + hb, ncost[1] + hl, ncost[2] + hc)
                heappush(heap, (f, counter, ncost, nstate))
                counter += 1

    found = goal_state is not None and goal_cost is not None
    final_cost = (
        _unkey(goal_cost, cost_order) if found else None
    )  # (bends, crossings, length)
    if stats is not None:
        stats.states_expanded += expanded
        stats.pruned += pruned
        stats.routes += 1
        if not found:
            stats.failures += 1
        row = {
            "net": net,
            "start": [sx, sy],
            "targets": len(target_dirs),
            "pops": expanded,
            "pruned": pruned,
            "bound": list(initial_bound) if initial_bound else None,
            "cost": list(final_cost) if final_cost else None,
            "escalated": escalated,
            "found": found,
            "area": (fx2 - fx1 + 1) * (fy2 - fy1 + 1),
            "unbounded": escalated,
            "seconds": round(time.perf_counter() - t_search, 6),
        }
        stats.record_connection(row)
    counters.inc("route.connections")
    counters.inc("route.expansions", expanded)
    counters.inc("route.astar_pruned", pruned)
    counters.observe("route.expansions_per_connection", expanded)
    if found and initial_bound is not None:
        # Bound tightness: estimated total bends at the start vs the
        # optimum actually found (1.0 = the bound was exact; +1 smooths
        # the all-straight zero-bend case).
        counters.observe(
            "route.bound_tightness",
            (initial_bound[0] + 1) / (final_cost[0] + 1),
        )
    if not found:
        counters.inc("route.connection_failures")
        return None

    path: list[Point] = []
    cursor = goal_state
    while cursor is not None:
        path.append(Point(cursor[0], cursor[1]))
        cursor = parents[cursor]
    path.reverse()
    bends, crossings, length = final_cost
    return RouteResult(
        path=normalize_path(path),
        bends=bends,
        crossings=crossings,
        length=length,
        states_expanded=expanded,
        footprint=(
            None
            if escalated
            else (fx1 - 1, fy1 - 1, fx2 + 1, fy2 + 1)
        ),
    )


def _route_bidirectional(
    heap: list,
    best: dict[tuple[int, int, int], tuple[int, int, int]],
    parents: dict[tuple[int, int, int], tuple[int, int, int] | None],
    counter: int,
    target_dirs: dict[tuple[int, int], frozenset[int] | None],
    heur,
    helpers,
    start_xy: tuple[int, int],
    start_dir_set: frozenset[int],
    allow: frozenset[Point],
    extra_hard: frozenset[Point],
    view,
    crossings_first: bool,
    cost_order: CostOrder,
    stats: SearchStats | None,
) -> RouteResult | None:
    """Meet-in-the-middle continuation of :func:`route_connection`.

    The forward search (seeded ``heap``/``best``/``parents``) keeps its
    semantics; a backward search grows path *suffixes* from every
    acceptable goal state towards the start.  Backward states share the
    forward state space — ``(point, entry direction)`` — and a backward
    cost deliberately *excludes* the entry cost at its own point (the
    forward cost-so-far pays it), so meeting on an identical state sums
    to exactly the full path cost with nothing double-counted.

    A meet candidate ``mu`` is recorded (and its path snapshotted — later
    reopenings may rewire parent chains) whenever a popped state exists
    on the other side.  Termination is sound per side: every undiscovered
    path must still thread an open state on *each* side with ``f`` at
    most its cost, so once either side's minimum ``f`` reaches ``mu`` no
    cheaper path remains.  Both sides stay exhaustive — ``None`` is
    returned only when no connection exists."""
    x1, y1 = view.x1, view.y1
    x2, y2 = view.x2, view.y2
    hard_blocked = view.blocked
    hard_claims = view.claims
    blocked = (view.blocked_h, view.blocked_v)
    unblock = (view.unblock_h, view.unblock_v)
    cross_tot = (view.cross_h, view.cross_v)
    own_cross = (view.own_cross_h, view.own_cross_v)
    occ_pts = view.occ_pts
    self_clear = view.self_clear
    sx, sy = start_xy
    zero = (0, 0, 0)
    heappush, heappop = heapq.heappush, heapq.heappop

    stops_row, stops_col, hrange, vrange = helpers

    def _hfree(y: int, a: int, b: int) -> bool:
        lst = stops_row(y)
        i = bisect_left(lst, a)
        return i >= len(lst) or lst[i] > b

    def _vfree(x: int, a: int, b: int) -> bool:
        lst = stops_col(x)
        i = bisect_left(lst, a)
        return i >= len(lst) or lst[i] > b

    def _bend_ok(x: int, y: int) -> bool:
        return (x, y) not in occ_pts or (x, y) in self_clear

    def heur_b(qx: int, qy: int, di: int) -> tuple[int, int, int]:
        """Admissible (bends, crossings, length) bound on any forward
        prefix from the start to state ``((qx, qy), di)``.

        The backward side enjoys what the forward side lacks: a single
        "target" (the start) and a fixed arrival direction, so the
        0-bend and 1-bend prefix candidates are *unique* straight runs
        whose feasibility (stop lists) and crossing price (range sums,
        including the entry crossing at ``q`` itself — the forward half
        of a meet pays it) are read off exactly.  Feasibility may only
        over-approximate — ``extra_hard`` points are absent from the
        index stop lists — which weakens the bound without breaking
        admissibility: a claimed ``(0, c, l)`` stays lexicographically
        below every >=1-bend prefix regardless of ``c``."""
        hl = abs(qx - sx) + abs(qy - sy)
        if di == 0:  # entered moving LEFT: start right of q for cheap prefixes
            if sy == qy:
                if sx >= qx:
                    if _hfree(qy, qx + 1, sx - 1):
                        return 0, hrange(qy, qx, sx - 1), hl
                    return 2, 0, hl
                return 3, 0, hl
            if sx > qx and _bend_ok(sx, qy):
                lo, hi = (sy + 1, qy) if qy > sy else (qy, sy - 1)
                if _vfree(sx, lo, hi) and _hfree(qy, qx + 1, sx - 1):
                    return 1, vrange(sx, lo, hi) + hrange(qy, qx, sx - 1), hl
            return 2, 0, hl
        if di == 1:  # entered moving RIGHT
            if sy == qy:
                if sx <= qx:
                    if _hfree(qy, sx + 1, qx - 1):
                        return 0, hrange(qy, sx + 1, qx), hl
                    return 2, 0, hl
                return 3, 0, hl
            if sx < qx and _bend_ok(sx, qy):
                lo, hi = (sy + 1, qy) if qy > sy else (qy, sy - 1)
                if _vfree(sx, lo, hi) and _hfree(qy, sx + 1, qx - 1):
                    return 1, vrange(sx, lo, hi) + hrange(qy, sx + 1, qx), hl
            return 2, 0, hl
        if di == 2:  # entered moving UP (+y): start below q
            if sx == qx:
                if sy <= qy:
                    if _vfree(qx, sy + 1, qy - 1):
                        return 0, vrange(qx, sy + 1, qy), hl
                    return 2, 0, hl
                return 3, 0, hl
            if sy < qy and _bend_ok(qx, sy):
                lo, hi = (sx + 1, qx) if qx > sx else (qx, sx - 1)
                if _hfree(sy, lo, hi) and _vfree(qx, sy + 1, qy - 1):
                    return 1, hrange(sy, lo, hi) + vrange(qx, sy + 1, qy), hl
            return 2, 0, hl
        # entered moving DOWN (-y): start above q
        if sx == qx:
            if sy >= qy:
                if _vfree(qx, qy + 1, sy - 1):
                    return 0, vrange(qx, qy, sy - 1), hl
                return 2, 0, hl
            return 3, 0, hl
        if sy > qy and _bend_ok(qx, sy):
            lo, hi = (sx + 1, qx) if qx > sx else (qx, sx - 1)
            if _hfree(sy, lo, hi) and _vfree(qx, qy + 1, sy - 1):
                return 1, hrange(sy, lo, hi) + vrange(qx, qy, sy - 1), hl
        return 2, 0, hl

    # Backward seeds: exactly the forward goal-acceptance rule — a
    # terminable (foreign-free) target, an allowed arrival direction,
    # and a legal entry along it.
    heap_b: list = []
    best_b: dict[tuple[int, int, int], tuple[int, int, int]] = {}
    parents_b: dict[tuple[int, int, int], tuple[int, int, int] | None] = {}
    counter_b = 0
    for pk, dirs in target_dirs.items():
        if pk in occ_pts and pk not in self_clear:
            continue
        if pk in extra_hard:
            continue
        if (pk in hard_blocked or pk in hard_claims) and pk not in allow:
            continue
        tx, ty = pk
        for di in range(4) if dirs is None else dirs:
            axis = 0 if _DIR_STEPS[di][2] else 1
            if pk in blocked[axis] and pk not in unblock[axis]:
                continue
            st = (tx, ty, di)
            best_b[st] = zero
            parents_b[st] = None
            hbb, hcb, hlb = heur_b(tx, ty, di)
            fb = (hbb, hcb, hlb) if crossings_first else (hbb, hlb, hcb)
            heappush(heap_b, (fb, counter_b, zero, st))
            counter_b += 1

    expanded = 0
    pruned = 0
    mu: tuple[int, int, int] | None = None
    mu_path: list[Point] | None = None
    # Search-footprint hull over both fronts (see RouteResult.footprint).
    fx1 = fx2 = sx
    fy1 = fy2 = sy
    for tx, ty in target_dirs:
        if tx < fx1:
            fx1 = tx
        elif tx > fx2:
            fx2 = tx
        if ty < fy1:
            fy1 = ty
        elif ty > fy2:
            fy2 = ty

    def snapshot(state: tuple[int, int, int]) -> list[Point]:
        pts: list[Point] = []
        cur: tuple[int, int, int] | None = state
        while cur is not None:
            pts.append(Point(cur[0], cur[1]))
            cur = parents[cur]
        pts.reverse()  # start .. meet point
        cur = parents_b[state]
        while cur is not None:
            pts.append(Point(cur[0], cur[1]))
            cur = parents_b[cur]
        return pts

    while True:
        if mu is not None and (
            not heap
            or heap[0][0] >= mu
            or not heap_b
            or heap_b[0][0] >= mu
        ):
            break
        if not heap or not heap_b:
            break  # a side exhausted with no meet: no connection exists
        if heap[0][0] <= heap_b[0][0]:
            _f, _, cost, state = heappop(heap)
            if cost != best.get(state):
                pruned += 1
                continue
            expanded += 1
            other = best_b.get(state)
            if other is not None:
                cand = (
                    cost[0] + other[0],
                    cost[1] + other[1],
                    cost[2] + other[2],
                )
                if mu is None or cand < mu:
                    mu = cand
                    mu_path = snapshot(state)
            px, py, di = state
            if px < fx1:
                fx1 = px
            elif px > fx2:
                fx2 = px
            if py < fy1:
                fy1 = py
            elif py > fy2:
                fy2 = py
            point_key = (px, py)
            can_turn = point_key not in occ_pts or point_key in self_clear
            c0, c1, c2 = cost
            for ndi in range(4):
                if ndi == _OPPOSITE[di]:
                    continue
                turning = ndi != di
                if turning and not can_turn:
                    continue
                dx, dy, moves_h = _DIR_STEPS[ndi]
                qx, qy = px + dx, py + dy
                if not (x1 <= qx <= x2 and y1 <= qy <= y2):
                    continue
                q = (qx, qy)
                if q in extra_hard:
                    continue
                if (q in hard_blocked or q in hard_claims) and q not in allow:
                    continue
                axis = 0 if moves_h else 1
                if q in blocked[axis] and q not in unblock[axis]:
                    continue
                cross = cross_tot[axis].get(q, 0)
                if cross:
                    cross -= own_cross[axis].get(q, 0)
                if crossings_first:
                    ncost = (c0 + turning, c1 + cross, c2 + 1)
                else:
                    ncost = (c0 + turning, c1 + 1, c2 + cross)
                nstate = (qx, qy, ndi)
                old = best.get(nstate)
                if old is None or ncost < old:
                    best[nstate] = ncost
                    parents[nstate] = state
                    hb, hc, hl = heur(qx, qy, ndi)
                    if crossings_first:
                        f = (ncost[0] + hb, ncost[1] + hc, ncost[2] + hl)
                    else:
                        f = (ncost[0] + hb, ncost[1] + hl, ncost[2] + hc)
                    heappush(heap, (f, counter, ncost, nstate))
                    counter += 1
        else:
            _f, _, cost, state = heappop(heap_b)
            if cost != best_b.get(state):
                pruned += 1
                continue
            expanded += 1
            other = best.get(state)
            if other is not None:
                cand = (
                    cost[0] + other[0],
                    cost[1] + other[1],
                    cost[2] + other[2],
                )
                if mu is None or cand < mu:
                    mu = cand
                    mu_path = snapshot(state)
            px, py, di = state
            if px < fx1:
                fx1 = px
            elif px > fx2:
                fx2 = px
            if py < fy1:
                fy1 = py
            elif py > fy2:
                fy2 = py
            dx, dy, moves_h = _DIR_STEPS[di]
            qx, qy = px - dx, py - dy
            if not (x1 <= qx <= x2 and y1 <= qy <= y2):
                continue
            q = (qx, qy)
            q_is_start = qx == sx and qy == sy
            q_hard = q in extra_hard or (
                (q in hard_blocked or q in hard_claims) and q not in allow
            )
            can_turn_q = q not in occ_pts or q in self_clear
            # The meet point's entry cost belongs to the forward side;
            # moving the frontier from p to q charges p's entry here.
            axis_p = 0 if moves_h else 1
            cross_p = cross_tot[axis_p].get(state[:2], 0)
            if cross_p:
                cross_p -= own_cross[axis_p].get(state[:2], 0)
            c0, c1, c2 = cost
            for ndi in range(4):
                if ndi == _OPPOSITE[di]:
                    continue
                turning = ndi != di
                if turning and not can_turn_q:
                    continue
                if not (q_is_start and ndi in start_dir_set):
                    # The untraversed start state is never *entered*, so
                    # its entry legality is moot — exactly like the
                    # forward side's initial states.
                    if q_hard:
                        continue
                    axis_q = 0 if _DIR_STEPS[ndi][2] else 1
                    if q in blocked[axis_q] and q not in unblock[axis_q]:
                        continue
                if crossings_first:
                    ncost = (c0 + turning, c1 + cross_p, c2 + 1)
                else:
                    ncost = (c0 + turning, c1 + 1, c2 + cross_p)
                nstate = (qx, qy, ndi)
                old = best_b.get(nstate)
                if old is None or ncost < old:
                    best_b[nstate] = ncost
                    parents_b[nstate] = state
                    hbb, hcb, hlb = heur_b(qx, qy, ndi)
                    if crossings_first:
                        fb = (ncost[0] + hbb, ncost[1] + hcb, ncost[2] + hlb)
                    else:
                        fb = (ncost[0] + hbb, ncost[1] + hlb, ncost[2] + hcb)
                    heappush(heap_b, (fb, counter_b, ncost, nstate))
                    counter_b += 1

    if stats is not None:
        stats.states_expanded += expanded
        stats.pruned += pruned
        stats.routes += 1
        if mu is None:
            stats.failures += 1
    counters.inc("route.connections")
    counters.inc("route.expansions", expanded)
    counters.inc("route.astar_pruned", pruned)
    counters.observe("route.expansions_per_connection", expanded)
    if mu is None or mu_path is None:
        counters.inc("route.connection_failures")
        return None
    bends, crossings, length = _unkey(mu, cost_order)
    return RouteResult(
        path=normalize_path(mu_path),
        bends=bends,
        crossings=crossings,
        length=length,
        states_expanded=expanded,
        footprint=(fx1 - 1, fy1 - 1, fx2 + 1, fy2 + 1),
    )


_MISSING = object()
_INF = (1 << 60, 1 << 60, 1 << 60)


def _unkey(
    cost: tuple[int, int, int], order: CostOrder
) -> tuple[int, int, int]:
    """Invert :meth:`CostOrder.key` back to (bends, crossings, length)."""
    if order is CostOrder.BENDS_CROSSINGS_LENGTH:
        return cost
    bends, length, crossings = cost
    return (bends, crossings, length)


def start_directions_for(side_outward: Direction | None) -> list[Direction]:
    """Initial expansion directions for a terminal (INIT_ACTIVES):
    subsystem terminals leave perpendicular to their module side, system
    terminals expand in all four directions."""
    if side_outward is None:
        return list(Direction)
    return [side_outward]
