"""The line-expansion router (sections 5.5 and 5.6).

The paper's router expands wavefronts of line segments; the wave number is
the number of bends in the paths reaching the front, and among solutions
with minimum bends it picks minimum crossovers, then minimum wire length
(the ``-s`` option swaps the last two criteria).

We realise exactly that optimisation as a lexicographic shortest-path
search over states ``(point, travel direction)`` on the routing plane:

* continuing straight costs length,
* changing direction costs a bend (wave number + 1) and is only legal at
  points free of foreign wires (a bend on a foreign wire would overlap),
* passing straight across a foreign wire costs a crossover,
* module borders, claimpoints, plane borders and foreign bend/end/branch
  points block (section 5.5.2: "the only obstacles are modules and bends
  in nets").

The first target state popped from the priority queue is therefore the
paper's optimum, and — like the paper's algorithm (section 5.5.4) — the
search is exhaustive, so a connection is found whenever one exists.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.geometry import Direction, Orientation, Point, normalize_path
from ..obs import counters
from .plane import Plane


class CostOrder(enum.Enum):
    """Tie-break order among minimum-bend paths (Appendix F, option -s)."""

    BENDS_CROSSINGS_LENGTH = "crossings-first"
    BENDS_LENGTH_CROSSINGS = "length-first"

    def key(self, bends: int, crossings: int, length: int) -> tuple[int, int, int]:
        if self is CostOrder.BENDS_CROSSINGS_LENGTH:
            return (bends, crossings, length)
        return (bends, length, crossings)


@dataclass(frozen=True)
class RouteResult:
    """A found connection and its cost."""

    path: list[Point]
    bends: int
    crossings: int
    length: int
    states_expanded: int = 0


@dataclass
class SearchStats:
    """Cumulative search effort (for the complexity experiments)."""

    states_expanded: int = 0
    routes: int = 0
    failures: int = 0


_State = tuple[Point, Direction]


class _PlaneSnapshot:
    """Flat per-net view of the plane for the search's inner loop.

    Built once per connection (O(occupied points)); turns the plane's
    per-step queries into set/dict lookups on bare ``(x, y)`` tuples.
    """

    __slots__ = (
        "x1",
        "y1",
        "x2",
        "y2",
        "hard",
        "foreign_any",
        "blocked_h",
        "blocked_v",
        "cross_h",
        "cross_v",
    )

    def __init__(self, plane: Plane, net: str, allow: frozenset[Point]) -> None:
        bounds = plane.bounds
        self.x1, self.y1 = bounds.x, bounds.y
        self.x2, self.y2 = bounds.x2, bounds.y2
        self.hard = (set(plane.blocked) | set(plane.claims)) - allow
        # Points carrying any foreign wire (no turning/terminating there).
        self.foreign_any: set[tuple[int, int]] = set()
        # Points a wire moving horizontally/vertically may not enter.
        self.blocked_h: set[tuple[int, int]] = set()
        self.blocked_v: set[tuple[int, int]] = set()
        # Crossing counts per point for horizontal/vertical passage.
        self.cross_h: dict[tuple[int, int], int] = {}
        self.cross_v: dict[tuple[int, int], int] = {}
        horizontal = Orientation.HORIZONTAL
        vertical = Orientation.VERTICAL
        for point, nets in plane.usage.items():
            foreign = False
            for other, orientations in nets.items():
                if other == net:
                    continue
                foreign = True
                if point in plane.nodes.get(other, ()):  # bend/end/branch
                    self.blocked_h.add(point)
                    self.blocked_v.add(point)
                    continue
                if not orientations:  # degenerate single-point wire
                    self.blocked_h.add(point)
                    self.blocked_v.add(point)
                    continue
                if horizontal in orientations:
                    self.blocked_h.add(point)
                    self.cross_v[point] = self.cross_v.get(point, 0) + 1
                if vertical in orientations:
                    self.blocked_v.add(point)
                    self.cross_h[point] = self.cross_h.get(point, 0) + 1
            if foreign:
                self.foreign_any.add(point)


#: (dx, dy, moves_horizontally) per direction, and the opposite's index.
_DIR_ORDER = [Direction.LEFT, Direction.RIGHT, Direction.UP, Direction.DOWN]
_DIR_STEPS = [(d.dx, d.dy, d.dy == 0) for d in _DIR_ORDER]
_DIR_INDEX = {d: i for i, d in enumerate(_DIR_ORDER)}
_OPPOSITE = [1, 0, 3, 2]


def route_connection(
    plane: Plane,
    net: str,
    start: Point,
    start_directions: Iterable[Direction],
    targets: Mapping[Point, frozenset[Direction] | None] | Iterable[Point],
    *,
    allow: frozenset[Point] = frozenset(),
    cost_order: CostOrder = CostOrder.BENDS_CROSSINGS_LENGTH,
    stats: SearchStats | None = None,
) -> RouteResult | None:
    """Find the best path of ``net`` from ``start`` to any target point.

    ``start_directions`` are the legal directions for the first wire
    segment (perpendicular to and away from the module side for subsystem
    terminals, all four for system terminals, section 5.6.3).

    ``targets`` maps target points to the set of arrival directions that
    are acceptable there (``None`` for any); a bare iterable of points
    accepts any arrival direction.

    Returns ``None`` when no connection exists — and only then.
    """
    if not isinstance(targets, Mapping):
        targets = {p: None for p in targets}
    if not targets:
        return None
    if start in targets:
        return RouteResult(path=[start], bends=0, crossings=0, length=0)

    snap = _PlaneSnapshot(plane, net, allow)
    target_dirs: dict[tuple[int, int], frozenset[int] | None] = {}
    for p, dirs in targets.items():
        target_dirs[(p.x, p.y)] = (
            None if dirs is None else frozenset(_DIR_INDEX[d] for d in dirs)
        )

    crossings_first = cost_order is CostOrder.BENDS_CROSSINGS_LENGTH
    x1, y1, x2, y2 = snap.x1, snap.y1, snap.x2, snap.y2
    hard = snap.hard
    foreign_any = snap.foreign_any
    blocked = (snap.blocked_h, snap.blocked_v)
    crossings_at = (snap.cross_h, snap.cross_v)

    counter = 0
    heap: list = []
    # state key: (x, y, dir_index) -> best cost tuple
    best: dict[tuple[int, int, int], tuple[int, int, int]] = {}
    parents: dict[tuple[int, int, int], tuple[int, int, int] | None] = {}
    sx, sy = start.x, start.y
    zero = (0, 0, 0)
    for d in start_directions:
        state = (sx, sy, _DIR_INDEX[d])
        best[state] = zero
        parents[state] = None
        heapq.heappush(heap, (zero, counter, state))
        counter += 1

    expanded = 0
    goal_state = None
    goal_cost = None
    heappush, heappop = heapq.heappush, heapq.heappop

    while heap:
        cost, _, state = heappop(heap)
        if cost > best.get(state, cost):
            continue  # stale entry
        px, py, di = state
        expanded += 1

        point_key = (px, py)
        arrival_ok = target_dirs.get(point_key, _MISSING)
        if arrival_ok is not _MISSING and point_key != (sx, sy):
            if (arrival_ok is None or di in arrival_ok) and (
                point_key not in foreign_any
            ):
                goal_state, goal_cost = state, cost
                break

        can_turn = point_key not in foreign_any
        c0, c1, length = cost
        for ndi in range(4):
            if ndi == _OPPOSITE[di]:
                continue
            turning = ndi != di
            if turning and not can_turn:
                continue
            dx, dy, moves_h = _DIR_STEPS[ndi]
            qx, qy = px + dx, py + dy
            if not (x1 <= qx <= x2 and y1 <= qy <= y2):
                continue
            q = (qx, qy)
            if q in hard or q in blocked[0 if moves_h else 1]:
                continue
            cross = crossings_at[0 if moves_h else 1].get(q, 0)
            if crossings_first:
                ncost = (c0 + turning, c1 + cross, length + 1)
            else:
                ncost = (c0 + turning, c1 + 1, length + cross)
            nstate = (qx, qy, ndi)
            old = best.get(nstate)
            if old is None or ncost < old:
                best[nstate] = ncost
                parents[nstate] = state
                heappush(heap, (ncost, counter, nstate))
                counter += 1

    if stats is not None:
        stats.states_expanded += expanded
        stats.routes += 1
        if goal_state is None:
            stats.failures += 1
    counters.inc("route.connections")
    counters.inc("route.expansions", expanded)
    counters.observe("route.expansions_per_connection", expanded)
    if goal_state is None or goal_cost is None:
        counters.inc("route.connection_failures")
        return None

    path: list[Point] = []
    cursor = goal_state
    while cursor is not None:
        path.append(Point(cursor[0], cursor[1]))
        cursor = parents[cursor]
    path.reverse()
    bends, crossings, length = _unkey(goal_cost, cost_order)
    return RouteResult(
        path=normalize_path(path),
        bends=bends,
        crossings=crossings,
        length=length,
        states_expanded=expanded,
    )


_MISSING = object()
_INF = (1 << 60, 1 << 60, 1 << 60)


def _unkey(
    cost: tuple[int, int, int], order: CostOrder
) -> tuple[int, int, int]:
    """Invert :meth:`CostOrder.key` back to (bends, crossings, length)."""
    if order is CostOrder.BENDS_CROSSINGS_LENGTH:
        return cost
    bends, length, crossings = cost
    return (bends, crossings, length)


def start_directions_for(side_outward: Direction | None) -> list[Direction]:
    """Initial expansion directions for a terminal (INIT_ACTIVES):
    subsystem terminals leave perpendicular to their module side, system
    terminals expand in all four directions."""
    if side_outward is None:
        return list(Direction)
    return [side_outward]
