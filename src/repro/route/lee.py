"""The Lee maze router (section 5.2.2) — baseline.

Classic wave expansion minimising *wire length only*: every grid step
costs 1, bends and crossovers are free.  It guarantees a minimum-length
connection whenever one exists, but — as the paper argues when choosing
line-expansion instead — the result trades bends for length, which hurts
schematic readability.  It runs on the same plane and obstacle semantics
as the main router so the comparison is apples-to-apples.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from ..core.geometry import Direction, Point, normalize_path, path_bends
from .line_expansion import RouteResult, SearchStats
from .plane import Plane

_State = tuple[Point, Direction]


def route_lee(
    plane: Plane,
    net: str,
    start: Point,
    start_directions: Iterable[Direction],
    targets: Mapping[Point, frozenset[Direction] | None] | Iterable[Point],
    *,
    allow: frozenset[Point] = frozenset(),
    stats: SearchStats | None = None,
) -> RouteResult | None:
    """Breadth-first wave expansion from ``start`` to any target."""
    if not isinstance(targets, Mapping):
        targets = {p: None for p in targets}
    if not targets:
        return None
    if start in targets:
        return RouteResult(path=[start], bends=0, crossings=0, length=0)

    queue: deque[tuple[int, _State]] = deque()
    parents: dict[_State, _State | None] = {}
    for d in start_directions:
        state = (start, d)
        parents[state] = None
        queue.append((0, state))

    expanded = 0
    goal: _State | None = None
    goal_length = 0
    while queue:
        length, state = queue.popleft()
        point, direction = state
        expanded += 1

        arrival = targets.get(point, _MISSING)
        if arrival is not _MISSING and point != start:
            if (arrival is None or direction in arrival) and plane.can_turn_at(
                point, net
            ):
                goal, goal_length = state, length
                break

        for nd in Direction:
            if nd is direction.opposite:
                continue
            if nd is not direction and not plane.can_turn_at(point, net):
                continue
            q = point.step(nd)
            nstate = (q, nd)
            if nstate in parents:
                continue
            if not plane.enterable(q, nd, net, allow):
                continue
            parents[nstate] = state
            queue.append((length + 1, nstate))

    if stats is not None:
        stats.states_expanded += expanded
        stats.routes += 1
        if goal is None:
            stats.failures += 1
    if goal is None:
        return None

    path: list[Point] = []
    cursor: _State | None = goal
    while cursor is not None:
        path.append(cursor[0])
        cursor = parents[cursor]
    path.reverse()
    norm = normalize_path(path)
    return RouteResult(
        path=norm,
        bends=path_bends(norm),
        crossings=path_crossings(plane, net, norm),
        length=goal_length,
    )


def path_crossings(plane: Plane, net: str, path: list[Point]) -> int:
    """Foreign nets crossed along a path (vertices can carry no foreign
    wire, so counting per segment point never double-counts)."""
    from ..core.geometry import path_segments

    total = 0
    for seg in path_segments(path):
        direction = Direction.RIGHT if seg.orientation.name == "HORIZONTAL" else Direction.UP
        for p in seg.points():
            total += plane.crossings_at(p, direction, net)
    return total


_MISSING = object()
