"""The claimpoint extension (section 5.7).

Every subsystem terminal that still has to be connected claims the first
grid point of the track just outside its module side.  Claims act as
module-type obstacles for every other net, so no net can wall a terminal
in before its own net is routed.  A terminal's claims are removed the
moment routing of its net starts; any remaining claims are removed before
the final retry pass.  The paper reports this cuts the number of
unroutable nets by roughly 75%.
"""

from __future__ import annotations

from typing import Hashable

from ..core.diagram import Diagram
from ..core.netlist import Pin
from ..obs import counters
from .plane import Plane


def claim_owner(net: str, pin: Pin) -> Hashable:
    return ("claim", net, pin)


def place_claims(plane: Plane, diagram: Diagram, nets: list[str]) -> int:
    """Claim the nearest track point for every pin of every given net.

    Returns the number of claims actually placed (occupied points are
    skipped silently — their terminal is already crowded)."""
    placed = 0
    for net_name in nets:
        net = diagram.network.nets[net_name]
        for pin in net.pins:
            position = diagram.pin_position(pin)
            side = diagram.pin_side(pin)
            if side is None:
                continue  # system terminals sit on the open border already
            claim_point = position.step(side.outward)
            if plane.add_claim(claim_point, claim_owner(net_name, pin)):
                placed += 1
    counters.inc("route.claims_placed", placed)
    return placed


def release_net_claims(plane: Plane, net_name: str, pins: list[Pin]) -> None:
    released = plane.release_claims(claim_owner(net_name, pin) for pin in pins)
    counters.inc("route.claims_released", released)
