"""The left-edge channel router (section 5.2.4) — baseline.

A channel router connects pins on the top and bottom edge of an
obstacle-free channel.  The classic left-edge algorithm sorts the nets'
horizontal spans by left coordinate and packs each track as densely as
possible.  The paper rejects channel routing for the generator because its
placement deliberately builds no channels — this implementation exists to
back that comparison (and because the min-cut baseline placement *does*
produce channel-like slices).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ChannelPin:
    """A pin at integer ``column`` on the ``top`` or bottom channel edge."""

    net: str
    column: int
    top: bool


@dataclass
class ChannelRoute:
    """Result of routing one channel."""

    tracks: list[list[str]] = field(default_factory=list)  # nets per track
    net_track: dict[str, int] = field(default_factory=dict)
    spans: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def width(self) -> int:
        """Number of tracks used (the channel height needed)."""
        return len(self.tracks)


def channel_density(pins: list[ChannelPin]) -> int:
    """The channel density: the maximum number of net spans crossing any
    column — a lower bound on the achievable track count."""
    spans = _spans(pins)
    if not spans:
        return 0
    lo = min(s[0] for s in spans.values())
    hi = max(s[1] for s in spans.values())
    best = 0
    for col in range(lo, hi + 1):
        best = max(best, sum(1 for a, b in spans.values() if a <= col <= b))
    return best


def _spans(pins: list[ChannelPin]) -> dict[str, tuple[int, int]]:
    spans: dict[str, tuple[int, int]] = {}
    for pin in pins:
        lo, hi = spans.get(pin.net, (pin.column, pin.column))
        spans[pin.net] = (min(lo, pin.column), max(hi, pin.column))
    return spans


def route_channel(pins: list[ChannelPin]) -> ChannelRoute:
    """Left-edge routing: fill one track at a time, left to right.

    All connections are always implemented; if the spans do not fit the
    density bound extra tracks are simply opened (the paper: "if the
    channel is not wide enough, the routing may overflow the channel, but
    the router implements all of the connections").
    """
    result = ChannelRoute(spans=_spans(pins))
    remaining = sorted(result.spans.items(), key=lambda kv: (kv[1][0], kv[1][1], kv[0]))
    while remaining:
        track: list[str] = []
        right_edge = None
        leftovers = []
        for net, (lo, hi) in remaining:
            if right_edge is None or lo > right_edge:
                track.append(net)
                result.net_track[net] = len(result.tracks)
                right_edge = hi
            else:
                leftovers.append((net, (lo, hi)))
        result.tracks.append(track)
        remaining = leftovers
    return result
