"""Ablation: the claimpoint extension (section 5.7).

The paper: "in practice, a decrease of about 75% in the number of
unroutable nets may be obtained."  The failure mode claims fix is the
figure 5.10 pattern — a net taking the only escape track of a terminal
routed later — so the workload is a field of facing module pairs with a
channel exactly as wide as the nets crossing it (see
``repro.workloads.congestion``), with the channel ends pinned so nothing
escapes around.  Roomy random placements are included to show claims
never hurt where there is no congestion.
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import route_placed
from repro.core.geometry import Side
from repro.place.pablo import PabloOptions, place_network
from repro.route.eureka import RouterOptions
from repro.workloads.congestion import facing_pairs_diagram
from repro.workloads.random_nets import random_network

SEEDS = range(8)
CHANNEL_OPTS = dict(
    retry_failed=False,
    margin=1,
    fixed_sides=frozenset({Side.LEFT, Side.RIGHT}),
)


def test_claimpoints_reduce_unroutable_nets(benchmark, experiment_store):
    def run():
        rows = []
        for seed in SEEDS:
            make = lambda: facing_pairs_diagram(pairs=8, nets_per_pair=4, seed=seed)
            with_claims = route_placed(
                make(), RouterOptions(claimpoints=True, **CHANNEL_OPTS)
            )
            without = route_placed(
                make(), RouterOptions(claimpoints=False, **CHANNEL_OPTS)
            )
            rows.append(
                {
                    "scenario": f"channels{seed}",
                    "nets": with_claims.metrics.nets_total,
                    "failed_with_claims": with_claims.metrics.nets_failed,
                    "failed_without": without.metrics.nets_failed,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("Claimpoints ablation (section 5.7)", rows)
    total_with = sum(r["failed_with_claims"] for r in rows)
    total_without = sum(r["failed_without"] for r in rows)
    reduction = 1 - total_with / total_without if total_without else 0.0
    print(
        f"\ntotal unroutable: {total_with} with claims vs {total_without} "
        f"without -> {reduction:.0%} reduction (paper: ~75%)"
    )
    experiment_store["abl_claims"] = {
        "failed_with": total_with,
        "failed_without": total_without,
        "reduction": round(reduction, 2),
    }
    assert total_without > 0  # the scenarios are actually congested
    assert total_with <= total_without
    assert reduction >= 0.5  # the paper's "about 75%" band


def test_claimpoints_harmless_when_roomy(benchmark):
    """On uncongested placements claims must not cost any routability."""

    def run():
        rows = []
        for seed in (1, 2, 3, 4):
            net = random_network(modules=10, extra_nets=6, seed=seed)
            base, _ = place_network(net, PabloOptions(partition_size=4, box_size=3))
            with_claims = route_placed(base.copy_placement(), RouterOptions())
            without = route_placed(
                base.copy_placement(), RouterOptions(claimpoints=False)
            )
            rows.append(
                (with_claims.metrics.nets_failed, without.metrics.nets_failed)
            )
        return rows

    rows = once(benchmark, run)
    assert all(w == 0 for w, _ in rows)
