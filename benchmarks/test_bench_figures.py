"""Regenerate the paper's figures 6.1 - 6.7 (chapter 6).

Every bench reproduces one figure's experiment: the same network, the
same PABLO/EUREKA options, a rendered SVG in ``out/figures``, and
assertions on the claims the paper makes about that figure.  Timings feed
Table 6.1 (see test_bench_table6_1.py).
"""

from __future__ import annotations

from conftest import once

from repro.core.generator import generate, route_placed
from repro.core.geometry import Point
from repro.core.metrics import diagram_metrics
from repro.core.validate import check_diagram, connectivity_matches_netlist
from repro.place.pablo import PabloOptions
from repro.render.svg import save_svg
from repro.route.eureka import RouterOptions
from repro.route.ripup import reroute_failed
from repro.workloads.examples import example1_string, example2_controller
from repro.workloads.life import hand_placement, life_network

LIFE_ROUTER = RouterOptions(margin=14)


def _summarise(store, key, result, figures_dir, name):
    save_svg(result.diagram, figures_dir / f"{name}.svg")
    row = {
        "figure": name,
        "modules": len(result.diagram.network.modules),
        "nets": result.metrics.nets_total,
        "routed": result.metrics.nets_routed,
        "placement_s": round(result.placement.seconds, 2),
        "routing_s": round(result.routing.seconds, 2),
        "length": result.metrics.length,
        "bends": result.metrics.bends,
        "crossovers": result.metrics.crossovers,
    }
    store[key] = row
    print(f"\n{name}: {row}")
    return row


def test_fig6_1_string(benchmark, experiment_store, figures_dir):
    """Figure 6.1: 6 modules / 6 nets, one partition, one box; the level
    assignment makes the number of bends minimal."""

    def run():
        return generate(
            example1_string(), PabloOptions(partition_size=7, box_size=7)
        )

    result = once(benchmark, run)
    assert result.placement.partition_count == 1
    assert result.placement.box_count == 1
    assert result.metrics.nets_failed == 0
    assert result.metrics.bends <= 2  # string nets are straight
    check_diagram(result.diagram)
    _summarise(experiment_store, "fig6_1", result, figures_dir, "fig6_1")


def test_fig6_2_clustering(benchmark, experiment_store, figures_dir):
    """Figure 6.2: partition size 1 / box size 1 — pure module clustering."""

    def run():
        return generate(
            example2_controller(), PabloOptions(partition_size=1, box_size=1)
        )

    result = once(benchmark, run)
    assert result.placement.partition_count == 16
    assert result.metrics.nets_failed == 0
    check_diagram(result.diagram)
    _summarise(experiment_store, "fig6_2", result, figures_dir, "fig6_2")
    experiment_store["fig6_2_diagram"] = result.diagram


def test_fig6_3_partitions(benchmark, experiment_store, figures_dir):
    """Figure 6.3: partition size 5 — distinct functional parts whose only
    common nets come from the central controller."""

    def run():
        return generate(
            example2_controller(), PabloOptions(partition_size=5, box_size=1)
        )

    result = once(benchmark, run)
    assert all(len(p) <= 5 for p in result.placement.partitions)
    assert result.metrics.nets_failed == 0
    check_diagram(result.diagram)
    _summarise(experiment_store, "fig6_3", result, figures_dir, "fig6_3")


def test_fig6_4_strings(benchmark, experiment_store, figures_dir):
    """Figure 6.4: partition size 7 / box size 5 — three partitions with
    strings of connected modules enforcing left-to-right signal flow."""

    def run():
        return generate(
            example2_controller(), PabloOptions(partition_size=7, box_size=5)
        )

    result = once(benchmark, run)
    assert 3 <= result.placement.partition_count <= 4
    strings = [b for part in result.placement.boxes for b in part if len(b) > 1]
    assert strings  # real strings were formed
    d = result.diagram
    for string in strings:
        xs = [d.placements[m].position.x for m in string]
        assert xs == sorted(xs)  # left-to-right levels
    assert result.metrics.nets_failed == 0
    check_diagram(result.diagram)
    _summarise(experiment_store, "fig6_4", result, figures_dir, "fig6_4")


def test_fig6_5_manual_edit(benchmark, experiment_store, figures_dir):
    """Figure 6.5: the figure 6.2 placement with one module manually moved
    to the top left, rerouted from scratch (placement time not charged,
    matching the '-' in Table 6.1)."""
    base = experiment_store.get("fig6_2_diagram")
    if base is None:
        base = generate(
            example2_controller(), PabloOptions(partition_size=1, box_size=1)
        ).diagram
    edited = base.copy_placement()
    bbox = edited.bounding_box(include_routes=False)
    edited.place_module("buf1", Point(bbox.x - 12, bbox.y2 + 6))

    def run():
        d = edited.copy_placement()
        return route_placed(d)

    result = once(benchmark, run)
    assert result.metrics.nets_failed == 0
    check_diagram(result.diagram)
    row = _summarise(experiment_store, "fig6_5", result, figures_dir, "fig6_5")
    row["placement_s"] = "-"


def test_fig6_6_life_hand_placed(benchmark, experiment_store, figures_dir):
    """Figure 6.6: the LIFE network (27 modules / 222 nets) placed by
    hand, routed by EUREKA.  The paper routed 220/222 on the first pass
    and completed the diagram after adjusting nets by hand; the rip-up
    pass plays that role here."""

    def run():
        return route_placed(hand_placement(pitch=24), LIFE_ROUTER)

    result = once(benchmark, run)
    first_pass_routed = result.metrics.nets_routed
    assert first_pass_routed >= 215  # paper: 220 of 222
    check_diagram(result.diagram)
    row = _summarise(experiment_store, "fig6_6", result, figures_dir, "fig6_6")
    row["placement_s"] = "-"
    row["first_pass_routed"] = first_pass_routed

    # The paper's hand-completion flow, automated:
    rip = reroute_failed(result.diagram, LIFE_ROUTER)
    final = diagram_metrics(result.diagram)
    print(
        f"\nfig6_6 completion: first pass {first_pass_routed}/222, after "
        f"rip-up {final.nets_routed}/222 (ripped {len(rip.ripped_nets)} nets)"
    )
    check_diagram(result.diagram)
    save_svg(result.diagram, figures_dir / "fig6_6_completed.svg")
    experiment_store["fig6_6_completed"] = {
        "routed": final.nets_routed,
        "nets": final.nets_total,
    }
    if final.nets_failed == 0:
        assert connectivity_matches_netlist(result.diagram)
        experiment_store["fig6_6_diagram"] = result.diagram


def test_fig6_7_life_automatic(benchmark, experiment_store, figures_dir):
    """Figure 6.7: the LIFE network fully automatically generated.  The
    paper's diagram 'looks much more complex' and routing took 7.5x the
    hand-placed time with one unroutable net — the shape to reproduce is:
    automatic placement routes fewer nets more slowly with more
    crossovers than the hand placement."""

    def run():
        return generate(
            life_network(),
            PabloOptions(partition_size=7, box_size=5),
            LIFE_ROUTER,
        )

    result = once(benchmark, run)
    check_diagram(result.diagram)
    row = _summarise(experiment_store, "fig6_7", result, figures_dir, "fig6_7")
    assert result.metrics.nets_routed >= 180  # paper: 221 of 222
    hand = experiment_store.get("fig6_6")
    if hand is not None:
        assert row["routing_s"] > hand["routing_s"] * 0.8
        assert row["routed"] <= hand["first_pass_routed"] + 5
