"""Daemon vs cold-batch throughput: the ``artwork-serve`` warm pool.

The gateway's reason to exist is cold-start elimination: a forked-once
pool with warm imports should push a 12-job batch through at a multiple
of what per-batch ``ProcessPoolExecutor`` spin-up allows.  These rows
land next to the cold/warm batch numbers in ``BENCH_service.json``
(mode ``serve``), together with HTTP p50/p95 request latencies read off
the gateway's own ``gateway.request_s`` histogram.

Parallel *scaling* assertions are gated on the visible core count — on
a single-core runner four workers time-slice one CPU and no pool can
beat serial execution, so there the assertions pin the spin-up win
(daemon ≥ cold at equal workers) and the honest numbers are recorded
either way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import once, print_table

from repro.gateway import GatewayConfig, HttpClient, start_gateway
from repro.service import BatchScheduler, JobSpec
from repro.workloads import batch_networks

BATCH = 12
MODULES = 7

#: Cores this process may actually use (CI runners often cap affinity).
CORES = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)
MULTI_CORE = CORES >= 2


def _specs() -> list[JobSpec]:
    nets = batch_networks(kind="random", count=BATCH, modules=MODULES, seed=500)
    return [JobSpec.from_network(n) for n in nets]


@pytest.fixture(scope="module")
def cold_reference() -> dict:
    """Cold 4-worker executor batch, measured once: the daemon's rival."""
    specs = _specs()
    sched = BatchScheduler(max_workers=4, serial_threshold=None)
    started = time.perf_counter()
    outcomes = sched.run(specs)
    wall = time.perf_counter() - started
    assert all(o.ok for o in outcomes)
    return {
        "jobs": len(outcomes),
        "wall_s": round(wall, 3),
        "jobs_per_s": round(len(outcomes) / wall, 2),
    }


def _drive(client: HttpClient, specs: list[JobSpec]) -> tuple[list[str], float]:
    """Burst-submit every spec, then wait all jobs out; returns statuses
    and the first-submit-to-last-done wall time."""
    started = time.perf_counter()
    ids = [client.post("/v1/jobs", s.to_dict()).json()["id"] for s in specs]
    statuses = [
        client.get(f"/v1/jobs/{job_id}?wait=120").json()["status"] for job_id in ids
    ]
    return statuses, time.perf_counter() - started


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_serve_daemon(benchmark, experiment_store, workers):
    specs = _specs()
    # No cache: every job must do real pipeline work.
    handle = start_gateway(GatewayConfig(workers=workers, job_timeout=120.0))
    try:
        with HttpClient("127.0.0.1", handle.port) as client:
            # One warm-up job outside the timer (first-touch allocations).
            warmup, _ = _drive(client, specs[:1])
            assert warmup == ["ok"]

            statuses, wall = once(benchmark, lambda: _drive(client, specs))
            assert statuses == ["ok"] * len(specs)

            metrics_text = client.get("/metrics").body.decode()
        assert 'repro_service_job_wall_s{quantile="0.5"}' in metrics_text
        assert 'repro_service_job_wall_s{quantile="0.95"}' in metrics_text
        request_hist = handle.gateway.registry.snapshot()["histograms"][
            "gateway.request_s"
        ]
    finally:
        handle.stop()
    experiment_store[f"service_serve_w{workers}"] = {
        "workers": workers,
        "mode": "serve",
        "jobs": len(specs),
        "wall_s": round(wall, 3),
        "jobs_per_s": round(len(specs) / wall, 2),
        "hit_rate": 0.0,
        "http_p50_ms": round(request_hist["p50"] * 1000, 3),
        "http_p95_ms": round(request_hist["p95"] * 1000, 3),
        "http_requests": request_hist["count"],
    }


def test_bench_serial_fast_path(benchmark, experiment_store):
    """The in-process serial path ``artwork-batch`` now defaults to for
    sub-30ms jobs: no forks, no pickling, no pool at all."""
    specs = _specs()

    def serial():
        sched = BatchScheduler(max_workers=4)  # probe engages the fast path
        started = time.perf_counter()
        outcomes = sched.run(specs)
        return sched, outcomes, time.perf_counter() - started

    sched, outcomes, wall = once(benchmark, serial)
    assert all(o.ok for o in outcomes)
    assert (
        "service.serial_fast_path" in sched.counters.snapshot()["counters"]
    ), "probe did not engage the serial fast path for sub-30ms jobs"
    experiment_store["service_serial"] = {
        "workers": 0,
        "mode": "serial",
        "jobs": len(outcomes),
        "wall_s": round(wall, 3),
        "jobs_per_s": round(len(outcomes) / wall, 2),
        "hit_rate": 0.0,
    }


BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def test_bench_gateway_summary(experiment_store, cold_reference):
    """Daemon acceptance ratios + a partial BENCH_service.json upsert so
    running only this file still persists the serve rows."""
    rows = {
        key: experiment_store[key]
        for key in sorted(experiment_store)
        if key.startswith("service_serve") or key == "service_serial"
    }
    if not rows:
        pytest.skip("no serve rows recorded")
    table = [
        {"ref": "cold_w4", **cold_reference},
    ] + [
        {
            "ref": key.removeprefix("service_"),
            "jobs": r["jobs"],
            "wall_s": r["wall_s"],
            "jobs_per_s": r["jobs_per_s"],
        }
        for key, r in rows.items()
    ]
    print_table(f"serve daemon vs cold batch ({CORES} cores visible)", table)

    cold_jps = cold_reference["jobs_per_s"]
    serve1 = experiment_store["service_serve_w1"]["jobs_per_s"]
    serve4 = experiment_store["service_serve_w4"]["jobs_per_s"]
    serial = experiment_store["service_serial"]["jobs_per_s"]

    # Structural wins that hold on any hardware: the serial fast path and
    # a single warm worker both eliminate per-batch spawn cost, so
    # neither may lose to the cold 4-worker executor outright (0.9 slack
    # absorbs run-to-run executor variance, which is large).
    assert serial >= 0.9 * cold_jps, (
        f"serial fast path ({serial}/s) lost to cold batch ({cold_jps}/s) — "
        "the cold-start regression is back"
    )
    assert serve1 >= 0.8 * cold_jps, (
        f"warm daemon ({serve1}/s, 1 worker) far slower than cold 4-worker "
        f"batch ({cold_jps}/s)"
    )
    if MULTI_CORE:
        # Real parallel hardware: scaling must be visible on top of the
        # spin-up elimination.  On a single visible core these cannot
        # hold (four workers time-slice one CPU), so there the honest
        # numbers are recorded above without the scaling gate.
        assert serve4 >= serve1, (
            f"4 warm workers ({serve4}/s) slower than 1 ({serve1}/s) "
            f"on {CORES} cores"
        )
        assert serve4 >= cold_jps, (
            f"warm daemon ({serve4}/s) under cold batch ({cold_jps}/s) "
            f"on {CORES} cores"
        )
    if os.environ.get("ARTWORK_BENCH_STRICT"):
        # The headline targets, for dedicated multi-core perf boxes
        # where scheduler noise is controlled (not the shared CI pool).
        assert serve4 >= 2.0 * cold_jps
        assert serve4 >= 1.3 * serve1

    # Upsert into BENCH_service.json (the service summary rewrites the
    # whole file when the full bench suite runs; this keeps a partial
    # gateway-only run honest too).
    existing = {}
    if BENCH_FILE.exists():
        existing = json.loads(BENCH_FILE.read_text())
    runs = [
        r
        for r in existing.get("runs", [])
        if (r.get("mode"), r.get("workers"))
        not in {(v["mode"], v["workers"]) for v in rows.values()}
    ]
    runs.extend(rows.values())
    existing.update(
        {
            "benchmark": "batch service throughput",
            "batch_jobs": BATCH,
            "modules_per_job": MODULES,
            "cold_reference": cold_reference,
            "cores_visible": CORES,
            "serve_w4_vs_cold": round(serve4 / cold_jps, 2),
            "serve_w1_vs_cold": round(serve1 / cold_jps, 2),
            "serial_vs_cold": round(serial / cold_jps, 2),
            "runs": runs,
        }
    )
    BENCH_FILE.write_text(json.dumps(existing, indent=1))
