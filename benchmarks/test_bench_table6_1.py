"""Regenerate Table 6.1 — the timing figures.

The paper's table reports, per figure, the module count, net count and
the placement/routing CPU seconds on an HP9000s500.  Absolute numbers are
not comparable across 37 years of hardware; the *shape* is what this
bench asserts and prints:

* placement is much faster than routing (the paper: 0:03-0:27 vs
  0:03-11:36),
* the LIFE rows dwarf the small examples,
* automatic LIFE placement (fig 6.7) routes slower than the hand
  placement (fig 6.6) — "if the placement is bad then the routing
  becomes slower".
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import generate
from repro.place.pablo import PabloOptions
from repro.workloads.examples import example1_string, example2_controller

PAPER_ROWS = {
    "fig6_1": {"modules": 6, "nets": 6, "placement": "0:03", "routing": "0:03"},
    "fig6_2": {"modules": 16, "nets": 24, "placement": "0:06", "routing": "0:10"},
    "fig6_3": {"modules": 16, "nets": 24, "placement": "0:06", "routing": "0:11"},
    "fig6_4": {"modules": 16, "nets": 24, "placement": "0:04", "routing": "0:09"},
    "fig6_5": {"modules": 16, "nets": 24, "placement": "-", "routing": "0:12"},
    "fig6_6": {"modules": 27, "nets": 222, "placement": "-", "routing": "1:32"},
    "fig6_7": {"modules": 27, "nets": 222, "placement": "0:27", "routing": "11:36"},
}


def _fallback_small_rows(store) -> None:
    """When the figure benches did not run this session, compute the cheap
    rows (figures 6.1-6.4) live so the table is never empty."""
    configs = {
        "fig6_1": (example1_string, PabloOptions(partition_size=7, box_size=7)),
        "fig6_2": (example2_controller, PabloOptions(partition_size=1, box_size=1)),
        "fig6_3": (example2_controller, PabloOptions(partition_size=5, box_size=1)),
        "fig6_4": (example2_controller, PabloOptions(partition_size=7, box_size=5)),
    }
    for key, (factory, options) in configs.items():
        if key in store:
            continue
        result = generate(factory(), options)
        store[key] = {
            "figure": key,
            "modules": len(result.diagram.network.modules),
            "nets": result.metrics.nets_total,
            "routed": result.metrics.nets_routed,
            "placement_s": round(result.placement.seconds, 2),
            "routing_s": round(result.routing.seconds, 2),
            "length": result.metrics.length,
            "bends": result.metrics.bends,
            "crossovers": result.metrics.crossovers,
        }


def test_table6_1(benchmark, experiment_store):
    """Print the measured Table 6.1 next to the paper's and assert the
    qualitative shape."""

    def build():
        _fallback_small_rows(experiment_store)
        return [
            experiment_store[k] for k in sorted(PAPER_ROWS) if k in experiment_store
        ]

    rows = once(benchmark, build)
    table = []
    for row in rows:
        paper = PAPER_ROWS[row["figure"]]
        table.append(
            {
                "figure": row["figure"],
                "modules": row["modules"],
                "nets": row["nets"],
                "routed": row["routed"],
                "paper_place": paper["placement"],
                "ours_place_s": row["placement_s"],
                "paper_route": paper["routing"],
                "ours_route_s": row["routing_s"],
            }
        )
    print_table("Table 6.1 — timing figures (paper vs measured)", table)

    by_fig = {r["figure"]: r for r in rows}
    # Module/net counts match the paper exactly.
    for key, row in by_fig.items():
        assert row["modules"] == PAPER_ROWS[key]["modules"]
        assert row["nets"] == PAPER_ROWS[key]["nets"]
    # Shape: small examples are fast; the LIFE rows dominate when present.
    small = [r for k, r in by_fig.items() if k in ("fig6_1", "fig6_2", "fig6_3", "fig6_4")]
    assert small
    for row in small:
        if isinstance(row["placement_s"], (int, float)):
            assert row["placement_s"] < 5.0
    if "fig6_6" in by_fig and "fig6_7" in by_fig:
        assert by_fig["fig6_7"]["routing_s"] > by_fig["fig6_6"]["routing_s"] * 0.8
        assert by_fig["fig6_6"]["routing_s"] > max(r["routing_s"] for r in small)
