"""Placement comparison (sections 4.2, 4.3, 4.5): PABLO vs the baselines.

The paper argues PABLO's partition/string/gravity pipeline fits
schematics better than the classic layout placers.  We place the same
networks with all four placers, route with the same EUREKA settings, and
compare routed quality.  The shapes to reproduce:

* every placer's output routes legally,
* PABLO yields left-to-right strings (bends stay low),
* the column placer (built for logic schematics) pays in wire length,
* min-cut/epitaxial ignore signal flow — crossovers and bends suffer on
  schematic-like (stringy) networks.
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import route_placed
from repro.core.validate import check_diagram
from repro.place.epitaxial import epitaxial_placement
from repro.place.logic_columns import logic_columns_placement
from repro.place.mincut import mincut_placement
from repro.place.pablo import PabloOptions, place_network
from repro.route.eureka import RouterOptions
from repro.workloads.examples import example2_controller
from repro.workloads.random_nets import random_network

ROUTER = RouterOptions(margin=6)


def _place_all(net):
    pablo, _ = place_network(net, PabloOptions(partition_size=5, box_size=4))
    return {
        "pablo": pablo,
        "epitaxial": epitaxial_placement(net),
        "mincut": mincut_placement(net),
        "columns": logic_columns_placement(net),
    }


def test_placement_comparison(benchmark, experiment_store):
    networks = {
        "example2": example2_controller(),
        "random10": random_network(modules=10, extra_nets=5, seed=21),
        "random14": random_network(modules=14, extra_nets=6, seed=22),
    }

    def run():
        rows = []
        for net_name, net in networks.items():
            for placer_name, diagram in _place_all(net).items():
                result = route_placed(diagram, ROUTER)
                check_diagram(result.diagram)
                rows.append(
                    {
                        "network": net_name,
                        "placer": placer_name,
                        "routed": f"{result.metrics.nets_routed}/{result.metrics.nets_total}",
                        "failed": result.metrics.nets_failed,
                        "length": result.metrics.length,
                        "bends": result.metrics.bends,
                        "crossovers": result.metrics.crossovers,
                        "area": result.diagram.bounding_box(include_routes=False).area,
                    }
                )
        return rows

    rows = once(benchmark, run)
    print_table("Placement comparison (PABLO vs baselines)", rows)
    experiment_store["abl_place"] = rows

    by = {}
    for row in rows:
        by.setdefault(row["placer"], []).append(row)

    def total(placer, key):
        return sum(r[key] for r in by[placer])

    # Everything routes almost completely under every placer.
    assert all(r["failed"] <= 1 for r in rows)
    # PABLO's strings keep bends at or below the layout-style placers on
    # aggregate (rule 6: bends hurt readability).
    assert total("pablo", "bends") <= total("mincut", "bends") * 1.2
    assert total("pablo", "bends") <= total("epitaxial", "bends") * 1.2
    # The column placer stretches wires (its known cost).
    assert total("columns", "length") >= total("pablo", "length") * 0.9
