"""Routing-plane index benchmark: pre-index snapshot Dijkstra vs the
incrementally indexed A*.

Two workloads (random nets and the datapath generator) are placed once;
each engine then routes its own deep copy of the placed diagram, so both
see identical geometry.  Measured per engine: wall time, states expanded
and (for the A*) stale-entry prunes.  A microbench also isolates the
per-connection obstacle-view cost — the O(plane) ``ReferenceSnapshot``
rebuild (cold) vs the O(own net) ``PlaneIndex.view`` overlay (warm) on
the fully routed plane.

Cost-tuple identity is enforced two ways: the engines must rank every
workload net identically (same routed/failed sets, same aggregate search
outcome), and on the example netlists every single connection's
(bends, crossings, length) is cross-checked against the reference via
``RouterOptions(verify_optimum=True)``.

Writes ``BENCH_route.json`` at the repo root for cross-PR tracking.
"""

from __future__ import annotations

import copy
import json
import os
import sys
import time
from pathlib import Path

from conftest import once, print_table

from repro.obs import counters
from repro.place.pablo import PabloOptions, place_network
from repro.route import RouterOptions, route_diagram
from repro.route.plane import Plane
from repro.route.reference import ReferenceSnapshot
from repro.workloads import (
    datapath_grid_diagram,
    datapath_network,
    example1_string,
    example2_controller,
    random_network,
)

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_route.json"

#: Acceptance floors for the tentpole (ISSUE 4): the indexed A* must
#: expand ≥3x fewer states and finish ≥2x faster on the random-nets
#: workload than the pre-index path.
MIN_STATE_RATIO = 3.0
MIN_WALL_RATIO = 2.0

#: Acceptance ceiling for the heuristic tentpole (ISSUE 9): the
#: crossover-aware bound plus the escalated exact bend-distance BFS must
#: at least halve the datapath workload's expanded states vs the 56,261
#: the plain geometric bound needed.
MAX_DATAPATH_STATES = 28_130

#: The parallel-scaling gate only bites where threads can actually run
#: in parallel: ≥4 visible cores on a free-threaded interpreter.  Under
#: the GIL the bench still enforces the much stronger property — the
#: parallel router's output is byte-identical to the serial one.
MIN_PARALLEL_SPEEDUP = 1.5
SCALING_LANES, SCALING_STAGES = 10, 25


def _workloads():
    random_net = random_network(modules=20, extra_nets=8, seed=11)
    dp_net = datapath_network(lanes=3, stages=6)
    return {
        "random_nets": place_network(random_net, PabloOptions())[0],
        "datapath": place_network(dp_net, PabloOptions())[0],
    }


def _route_once(diagram, options):
    d = copy.deepcopy(diagram)
    started = time.perf_counter()
    report = route_diagram(d, options)
    wall = time.perf_counter() - started
    return d, report, wall


def test_bench_route_engines(benchmark, experiment_store):
    workloads = _workloads()

    def run():
        rows = []
        for name, placed in workloads.items():
            reg = counters.get_registry()
            _, ref_report, ref_wall = _route_once(
                placed, RouterOptions(engine="reference")
            )
            before = reg.get("route.astar_pruned")
            _, idx_report, idx_wall = _route_once(placed, RouterOptions())
            pruned = reg.get("route.astar_pruned") - before
            _, bidi_report, bidi_wall = _route_once(
                placed, RouterOptions(bidirectional=True)
            )
            assert idx_report.nets_routed == ref_report.nets_routed
            assert bidi_report.nets_routed == ref_report.nets_routed
            assert {str(f) for f in idx_report.failed_nets} == {
                str(f) for f in ref_report.failed_nets
            }
            rows.append(
                {
                    "workload": name,
                    "engine": "reference",
                    "wall_s": round(ref_wall, 3),
                    "states": ref_report.search.states_expanded,
                    "pruned": 0,
                    "routed": f"{ref_report.nets_routed}/{ref_report.nets_total}",
                }
            )
            rows.append(
                {
                    "workload": name,
                    "engine": "indexed-astar",
                    "wall_s": round(idx_wall, 3),
                    "states": idx_report.search.states_expanded,
                    "pruned": pruned,
                    "routed": f"{idx_report.nets_routed}/{idx_report.nets_total}",
                }
            )
            rows.append(
                {
                    "workload": name,
                    "engine": "indexed-astar-bidi",
                    "wall_s": round(bidi_wall, 3),
                    "states": bidi_report.search.states_expanded,
                    "pruned": 0,
                    "routed": f"{bidi_report.nets_routed}/{bidi_report.nets_total}",
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("routing engines: pre-index reference vs indexed A*", rows)
    experiment_store["route_engines"] = rows

    by_key = {(r["workload"], r["engine"]): r for r in rows}
    ref = by_key[("random_nets", "reference")]
    idx = by_key[("random_nets", "indexed-astar")]
    state_ratio = ref["states"] / max(1, idx["states"])
    wall_ratio = ref["wall_s"] / max(1e-9, idx["wall_s"])
    experiment_store["route_ratios"] = {
        "states_ratio": round(state_ratio, 2),
        "wall_ratio": round(wall_ratio, 2),
    }
    assert state_ratio >= MIN_STATE_RATIO, (
        f"A* expanded only {state_ratio:.2f}x fewer states than the "
        f"reference (need >= {MIN_STATE_RATIO}x)"
    )
    assert wall_ratio >= MIN_WALL_RATIO, (
        f"indexed path only {wall_ratio:.2f}x faster than the reference "
        f"(need >= {MIN_WALL_RATIO}x)"
    )

    dp_ref = by_key[("datapath", "reference")]
    dp_idx = by_key[("datapath", "indexed-astar")]
    experiment_store["route_datapath_ratios"] = {
        "states_ratio": round(dp_ref["states"] / max(1, dp_idx["states"]), 2),
        "wall_ratio": round(dp_ref["wall_s"] / max(1e-9, dp_idx["wall_s"]), 2),
        "states": dp_idx["states"],
    }
    assert dp_idx["states"] <= MAX_DATAPATH_STATES, (
        f"datapath A* expanded {dp_idx['states']} states "
        f"(ceiling {MAX_DATAPATH_STATES})"
    )


def test_bench_snapshot_vs_view(benchmark, experiment_store):
    """Per-connection obstacle-view cost on a fully routed plane: the
    cold O(plane) snapshot rebuild vs the warm O(own net) index overlay."""
    placed = _workloads()["random_nets"]
    routed, _, _ = _route_once(placed, RouterOptions())
    plane = Plane.for_diagram(routed)
    nets = [n for n in routed.network.nets if plane.net_points(n)]
    repeats = 25

    def run():
        started = time.perf_counter()
        for _ in range(repeats):
            for net in nets:
                ReferenceSnapshot(plane, net, frozenset())
        cold = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(repeats):
            for net in nets:
                plane.index.view(net)
        warm = time.perf_counter() - started
        return cold, warm

    cold, warm = once(benchmark, run)
    per = repeats * len(nets)
    rows = [
        {
            "view": "ReferenceSnapshot (cold rebuild)",
            "per_connection_us": round(1e6 * cold / per, 1),
        },
        {
            "view": "PlaneIndex.view (warm overlay)",
            "per_connection_us": round(1e6 * warm / per, 1),
        },
    ]
    print_table("per-connection obstacle view cost", rows)
    experiment_store["route_view_cost"] = rows
    assert warm < cold, "index overlay failed to beat the snapshot rebuild"


def test_bench_route_verified_examples(benchmark, experiment_store):
    """Every connection of the example netlists must have the exact
    reference optimum: identical (bends, crossings, length) per net."""
    examples = {
        "example1_string": example1_string(),
        "example2_controller": example2_controller(),
    }

    def run():
        reg = counters.get_registry()
        out = []
        for name, network in examples.items():
            placed, _ = place_network(network, PabloOptions())
            v0 = reg.get("route.verified_connections")
            m0 = reg.get("route.verify_mismatch")
            _, report, _ = _route_once(placed, RouterOptions(verify_optimum=True))
            out.append(
                {
                    "netlist": name,
                    "verified": reg.get("route.verified_connections") - v0,
                    "mismatches": reg.get("route.verify_mismatch") - m0,
                    "routed": f"{report.nets_routed}/{report.nets_total}",
                }
            )
        return out

    rows = once(benchmark, run)
    print_table("per-connection optimum verification (examples)", rows)
    experiment_store["route_verified"] = rows
    for row in rows:
        assert row["verified"] > 0, row
        assert row["mismatches"] == 0, row


def test_bench_route_parallel_scaling(benchmark, experiment_store):
    """Speculative parallel routing at scale: a ~500-net datapath, serial
    vs ``parallel_nets``.  Identity of the routed output is a hard gate
    everywhere; the wall-clock speedup gate only applies where threads
    can run in parallel (≥4 cores, free-threaded interpreter)."""
    base = datapath_grid_diagram(lanes=SCALING_LANES, stages=SCALING_STAGES)

    def run():
        reg = counters.get_registry()
        serial, serial_report, serial_wall = _route_once(base, RouterOptions())
        w0 = reg.get("route.parallel.waves")
        c0 = reg.get("route.parallel.conflicts")
        parallel, par_report, par_wall = _route_once(
            base, RouterOptions(parallel_nets=True)
        )
        identical = set(serial.routes) == set(parallel.routes) and all(
            serial.routes[n].paths == parallel.routes[n].paths
            for n in serial.routes
        )
        return {
            "nets": serial_report.nets_total,
            "routed_serial": serial_report.nets_routed,
            "routed_parallel": par_report.nets_routed,
            "serial_wall_s": round(serial_wall, 3),
            "parallel_wall_s": round(par_wall, 3),
            "speedup": round(serial_wall / max(1e-9, par_wall), 2),
            "waves": reg.get("route.parallel.waves") - w0,
            "conflicts": reg.get("route.parallel.conflicts") - c0,
            "identical_routes": identical,
            "cores": os.cpu_count() or 1,
            "gil": getattr(sys, "_is_gil_enabled", lambda: True)(),
        }

    row = once(benchmark, run)
    print_table("parallel net routing at ~500 nets", [row])
    experiment_store["route_scaling"] = row

    assert row["nets"] >= 500
    assert row["identical_routes"], "parallel routing diverged from serial"
    assert row["routed_parallel"] == row["routed_serial"]
    if row["cores"] >= 4 and not row["gil"]:
        assert row["speedup"] >= MIN_PARALLEL_SPEEDUP, (
            f"parallel speedup {row['speedup']}x on {row['cores']} cores "
            f"(need >= {MIN_PARALLEL_SPEEDUP}x)"
        )


def test_bench_route_profile_attribution(benchmark, experiment_store):
    """Sampler-measured cost attribution: route the datapath workload
    under a high-hz sampling profiler and report the hottest self-time
    frames next to the wall clock.  Also projects the measured per-tick
    cost down to the always-on 19 hz rate and enforces the <2% overhead
    budget that rate is sold on."""
    from repro.obs.sampler import DEFAULT_HZ, Sampler, label_thread, merge_windows, unlabel_thread

    placed = _workloads()["datapath"]

    def run():
        sampler = Sampler(hz=199.0, window_s=1.0, max_windows=600)
        label_thread("bench.route")
        sampler.start()
        try:
            _, report, wall = _route_once(placed, RouterOptions())
        finally:
            sampler.stop()
            unlabel_thread()
        merged = merge_windows(sampler.windows())
        per_tick_s = merged.self_s / max(1, merged.ticks)
        return {
            "wall_s": round(wall, 3),
            "samples": merged.samples,
            "ticks": merged.ticks,
            "top_frames": merged.top_frames(5),
            "attributed_ratio": round(merged.attributed_ratio(), 3),
            "overhead_at_19hz": round(per_tick_s * DEFAULT_HZ, 5),
            "routed": f"{report.nets_routed}/{report.nets_total}",
        }

    row = once(benchmark, run)
    print_table(
        "datapath routing under the sampler",
        [
            {"frame": name, "self_samples": count,
             "share": f"{100.0 * count / max(1, row['samples']):.1f}%"}
            for name, count in row["top_frames"]
        ],
    )
    experiment_store["route_profile"] = row

    assert row["samples"] > 0, "sampler saw no stacks during the route"
    # The hottest frames must be the router's own machinery, not noise.
    assert any(
        "repro.route" in name for name, _ in row["top_frames"]
    ), row["top_frames"]
    assert row["overhead_at_19hz"] < 0.02, (
        f"always-on sampling would cost {100 * row['overhead_at_19hz']:.2f}% "
        "of wall clock at 19 hz (budget: 2%)"
    )


def test_bench_route_summary(experiment_store):
    """Persist the routing-bench numbers as ``BENCH_route.json``."""
    engines = experiment_store.get("route_engines")
    if not engines:
        return
    BENCH_FILE.write_text(
        json.dumps(
            {
                "benchmark": "routing-plane index + admissible A*",
                "engines": engines,
                "random_nets_speedup": experiment_store.get("route_ratios"),
                "datapath_speedup": experiment_store.get("route_datapath_ratios"),
                "parallel_scaling": experiment_store.get("route_scaling"),
                "per_connection_view": experiment_store.get("route_view_cost"),
                "verified_examples": experiment_store.get("route_verified"),
                "profile": experiment_store.get("route_profile"),
            },
            indent=1,
        )
    )
