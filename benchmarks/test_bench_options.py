"""Ablation: the -s option (Appendix F) — tie-break order of the router.

Default: among minimum-bend paths take minimum crossovers, then minimum
length.  With -s: length first, crossovers second.  The shape: the
crossover-first order never produces more crossovers, the length-first
order never produces longer wires (aggregated over workloads; bends are
identical by construction).
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import route_placed
from repro.place.pablo import PabloOptions, place_network
from repro.route.eureka import RouterOptions
from repro.workloads.examples import example2_controller
from repro.workloads.random_nets import random_network


def _scenarios():
    out = []
    d, _ = place_network(example2_controller(), PabloOptions(partition_size=5))
    out.append(("example2", d))
    for seed in (7, 8, 9):
        net = random_network(modules=10, extra_nets=8, seed=seed)
        diagram, _ = place_network(net, PabloOptions(partition_size=4, box_size=3))
        out.append((f"random{seed}", diagram))
    return out


def test_swap_option_trades_crossings_for_length(benchmark, experiment_store):
    def run():
        rows = []
        for name, diagram in _scenarios():
            default = route_placed(diagram.copy_placement(), RouterOptions())
            swapped = route_placed(
                diagram.copy_placement(), RouterOptions().with_swap_option()
            )
            rows.append(
                {
                    "scenario": name,
                    "bends_default": default.metrics.bends,
                    "bends_swap": swapped.metrics.bends,
                    "cross_default": default.metrics.crossovers,
                    "cross_swap": swapped.metrics.crossovers,
                    "len_default": default.metrics.length,
                    "len_swap": swapped.metrics.length,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("Router tie-break order (-s option, Appendix F)", rows)
    cross_default = sum(r["cross_default"] for r in rows)
    cross_swap = sum(r["cross_swap"] for r in rows)
    len_default = sum(r["len_default"] for r in rows)
    len_swap = sum(r["len_swap"] for r in rows)
    print(
        f"\ntotals: crossovers {cross_default} vs {cross_swap} (swap), "
        f"length {len_default} vs {len_swap} (swap)"
    )
    experiment_store["abl_s_option"] = {
        "cross_default": cross_default,
        "cross_swap": cross_swap,
        "len_default": len_default,
        "len_swap": len_swap,
    }
    # The default order is crossover-averse, -s is length-averse.  Net
    # interactions mean per-scenario noise, so assert on the totals.
    assert cross_default <= cross_swap
    assert len_swap <= len_default
