"""The ESCHER+ validation (chapter 6, example 3): simulate the artwork.

The paper: "To check whether the routing has been done correctly, the
schematic diagram has been simulated by the simulator in ESCHER+.  The
results were positive."

This bench routes the hand-placed LIFE network, completes the last nets
with the rip-up pass (the paper's hand adjustment), extracts electrical
connectivity *from the routed geometry alone*, simulates the Game of Life
machine on it, and checks the board against the numpy reference model —
the strongest possible statement that the drawn artwork is the network.
"""

from __future__ import annotations

import numpy as np
from conftest import once

from repro.core.metrics import diagram_metrics
from repro.core.validate import check_diagram, connectivity_matches_netlist
from repro.route.eureka import RouterOptions, route_diagram
from repro.route.ripup import reroute_failed
from repro.sim.life_sim import LifeMachine
from repro.workloads.life import GLIDER, hand_placement, reference_life_run

GENERATIONS = 4


def test_simulate_routed_life_diagram(benchmark, experiment_store):
    def run():
        diagram = experiment_store.get("fig6_6_diagram")
        if diagram is None:
            diagram = hand_placement(pitch=24)
            options = RouterOptions(margin=14)
            route_diagram(diagram, options)
            reroute_failed(diagram, options)
        metrics = diagram_metrics(diagram)
        assert metrics.nets_failed == 0, "LIFE diagram must be fully routed"
        check_diagram(diagram)
        assert connectivity_matches_netlist(diagram)

        machine = LifeMachine(GLIDER, diagram=diagram)
        boards = [machine.board().copy()]
        for _ in range(GENERATIONS):
            boards.append(machine.step_generation().copy())
        return metrics, boards

    metrics, boards = once(benchmark, run)
    assert np.array_equal(boards[0], GLIDER)
    for g in range(1, GENERATIONS + 1):
        assert np.array_equal(boards[g], reference_life_run(GLIDER, g)), (
            f"generation {g} diverged from the reference model"
        )
    print(
        f"\nsimulated {GENERATIONS} LIFE generations from routed geometry "
        f"({metrics.nets_routed}/{metrics.nets_total} nets): results positive"
    )
    experiment_store["sim_life"] = {
        "generations": GENERATIONS,
        "nets": metrics.nets_total,
        "match": True,
    }
