"""Ablation: net-ordering criteria (chapter 7, further research).

The paper: "Routing of the nets is done successively.  It is probably
better to construct a certain criterion for selecting the next net to be
routed partially or completely."  EUREKA exposes three orders; this bench
measures them on congested and roomy workloads.  The expected shape:
ordering matters on congested inputs (different failure/quality numbers)
and shortest-span-first is a solid default.
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import route_placed
from repro.core.geometry import Side
from repro.route.eureka import RouterOptions
from repro.workloads.congestion import facing_pairs_diagram
from repro.workloads.life import hand_placement

ORDERS = ("input", "shortest_first", "fewest_pins_first")


def test_net_ordering(benchmark, experiment_store):
    def run():
        rows = []
        channel_opts = dict(
            margin=1,
            retry_failed=False,
            claimpoints=False,
            fixed_sides=frozenset({Side.LEFT, Side.RIGHT}),
        )
        for order in ORDERS:
            failed = length = bends = 0
            for seed in range(6):
                d = facing_pairs_diagram(pairs=6, nets_per_pair=4, seed=seed)
                r = route_placed(d, RouterOptions(net_order=order, **channel_opts))
                failed += r.metrics.nets_failed
                length += r.metrics.length
                bends += r.metrics.bends
            rows.append(
                {
                    "workload": "channels(no claims)",
                    "order": order,
                    "failed": failed,
                    "length": length,
                    "bends": bends,
                }
            )
        # A moderately tight LIFE board (claims on, one pass, no retry).
        for order in ORDERS:
            d = hand_placement(pitch=18)
            r = route_placed(
                d,
                RouterOptions(net_order=order, margin=10, retry_failed=False),
            )
            rows.append(
                {
                    "workload": "life(pitch 18)",
                    "order": order,
                    "failed": r.metrics.nets_failed,
                    "length": r.metrics.length,
                    "bends": r.metrics.bends,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("Net ordering ablation (chapter 7)", rows)
    experiment_store["abl_net_order"] = rows

    # Ordering is consequential: at least two orders disagree somewhere.
    by_workload: dict[str, list[dict]] = {}
    for r in rows:
        by_workload.setdefault(r["workload"], []).append(r)
    assert any(
        len({(r["failed"], r["length"]) for r in group}) > 1
        for group in by_workload.values()
    )
    # The library default is never the worst failure count on aggregate.
    totals = {
        order: sum(r["failed"] for r in rows if r["order"] == order)
        for order in ORDERS
    }
    assert totals["shortest_first"] <= max(totals.values())
