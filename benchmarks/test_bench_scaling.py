"""Scaling / complexity experiments (sections 4.6.8 and 5.8).

The paper makes complexity claims qualitatively: placement "is strongly
related to the number of modules in the network"; routing "is strongly
related to the number of bends in the constructed path" and slows as
congestion grows.  We sweep a parameterised datapath from 8 to 46
modules and record the curves.
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import generate
from repro.core.validate import check_diagram
from repro.place.pablo import PabloOptions
from repro.route.eureka import RouterOptions
from repro.workloads.datapath import datapath_network

SWEEP = [(1, 4), (2, 4), (2, 8), (3, 8)]


def test_scaling_sweep(benchmark, experiment_store):
    def run():
        rows = []
        for lanes, stages in SWEEP:
            net = datapath_network(lanes=lanes, stages=stages)
            result = generate(
                net,
                PabloOptions(partition_size=6, box_size=5, module_extra_space=1),
                RouterOptions(margin=8),
            )
            check_diagram(result.diagram)
            rows.append(
                {
                    "network": net.name,
                    "modules": len(net.modules),
                    "nets": result.metrics.nets_total,
                    "routed": result.metrics.nets_routed,
                    "place_s": round(result.placement.seconds, 3),
                    "route_s": round(result.routing.seconds, 3),
                    "states": result.routing.search.states_expanded,
                    "bends": result.metrics.bends,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("Scaling sweep (sections 4.6.8 / 5.8)", rows)
    experiment_store["scaling"] = rows

    # Everything routes completely at every size.
    assert all(r["routed"] == r["nets"] for r in rows)
    # Placement stays cheap in absolute terms (the paper: "in no time").
    assert all(r["place_s"] < 2.0 for r in rows)
    # Routing effort (search states) grows with design size.
    states = [r["states"] for r in rows]
    assert states[-1] > states[0]
    # Routing dominates placement at the largest size.
    assert rows[-1]["route_s"] > rows[-1]["place_s"]
