"""Batch service throughput: cold vs warm cache across worker counts.

The service acceptance numbers: a warm second pass over the same batch
must be ≥90% cache hits and measurably faster than the cold pass, and
diagrams must not depend on the worker count.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from conftest import once, print_table

from repro.service import BatchScheduler, JobSpec, ResultCache
from repro.workloads import batch_networks

BATCH = 12
MODULES = 7


def _specs() -> list[JobSpec]:
    nets = batch_networks(kind="random", count=BATCH, modules=MODULES, seed=500)
    return [JobSpec.from_network(n) for n in nets]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_cold_batch(benchmark, experiment_store, tmp_path, workers):
    specs = _specs()

    def cold():
        # serial_threshold=None forces the per-batch executor so "cold"
        # keeps measuring pool spin-up (the daemon/serial rows in
        # test_bench_gateway.py measure the warm alternatives).
        sched = BatchScheduler(
            max_workers=workers,
            cache=ResultCache(tmp_path / "c"),
            serial_threshold=None,
        )
        started = time.perf_counter()
        outcomes = sched.run(specs)
        return outcomes, time.perf_counter() - started

    outcomes, wall = once(benchmark, cold)
    assert all(o.ok for o in outcomes)
    experiment_store[f"service_cold_w{workers}"] = {
        "workers": workers,
        "mode": "cold",
        "jobs": len(outcomes),
        "wall_s": round(wall, 3),
        "jobs_per_s": round(len(outcomes) / wall, 2),
        "hit_rate": 0.0,
    }
    experiment_store.setdefault("service_escher", {})[workers] = [
        o.payload["escher"] for o in outcomes
    ]


def test_bench_warm_cache(benchmark, experiment_store, tmp_path):
    specs = _specs()
    cache = ResultCache(tmp_path / "warm")
    cold_sched = BatchScheduler(max_workers=4, cache=cache, serial_threshold=None)
    started = time.perf_counter()
    cold_sched.run(specs)
    cold_wall = time.perf_counter() - started

    def warm():
        sched = BatchScheduler(max_workers=4, cache=cache, serial_threshold=None)
        started = time.perf_counter()
        outcomes = sched.run(specs)
        return outcomes, time.perf_counter() - started

    outcomes, warm_wall = once(benchmark, warm)
    hits = sum(o.from_cache for o in outcomes)
    hit_rate = hits / len(outcomes)
    assert hit_rate >= 0.9, f"warm pass only {hits}/{len(outcomes)} cache hits"
    assert warm_wall < cold_wall, "warm cache failed to beat the cold pass"
    experiment_store["service_warm_w4"] = {
        "workers": 4,
        "mode": "warm",
        "jobs": len(outcomes),
        "wall_s": round(warm_wall, 3),
        "jobs_per_s": round(len(outcomes) / warm_wall, 2),
        "hit_rate": round(hit_rate, 3),
    }


#: Machine-readable perf trajectory, tracked across PRs at the repo root.
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def test_bench_service_summary(experiment_store):
    """Print the aggregate service table; check worker-count invariance;
    persist the numbers as ``BENCH_service.json`` for cross-PR tracking."""
    escher = experiment_store.get("service_escher", {})
    baseline = escher.get(1)
    for workers, texts in escher.items():
        assert texts == baseline, f"workers={workers} changed the diagrams"
    rows = [
        experiment_store[key]
        for key in sorted(experiment_store)
        # Every service row: cold/warm batch plus the serial fast path
        # and serve-daemon rows test_bench_gateway.py contributes.
        if key.startswith("service_")
        and isinstance(experiment_store[key], dict)
        and "mode" in experiment_store[key]
    ]
    print_table("batch service throughput (cold vs warm cache)", rows)
    if rows:
        # Preserve keys other bench files contribute (the gateway bench
        # adds cold_reference / core-count / ratio context).
        payload = {}
        if BENCH_FILE.exists():
            try:
                payload = json.loads(BENCH_FILE.read_text())
            except json.JSONDecodeError:
                payload = {}
        payload.update(
            {
                "benchmark": "batch service throughput",
                "batch_jobs": BATCH,
                "modules_per_job": MODULES,
                "runs": rows,
            }
        )
        BENCH_FILE.write_text(json.dumps(payload, indent=1))
