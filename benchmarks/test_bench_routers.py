"""Router comparison (sections 5.2 and 5.4): line-expansion vs Lee vs
Hightower on random mazes.

The paper's argument for the line-expansion principle:

* it guarantees a connection whenever one exists (like Lee, unlike
  Hightower),
* it finds minimum-bend paths (like Hightower on simple mazes, unlike
  Lee, whose minimum-length paths zigzag),
* Lee pays for minimality in bends; Hightower is fast but incomplete.
"""

from __future__ import annotations

import random

from conftest import once, print_table

from repro.core.geometry import Direction, Point, Rect
from repro.route.hightower import route_hightower
from repro.route.lee import route_lee
from repro.route.line_expansion import SearchStats, route_connection
from repro.route.plane import Plane

MAZES = 40
SIZE = 28


def _random_maze(rng: random.Random):
    plane = Plane(bounds=Rect(0, 0, SIZE, SIZE))
    for _ in range(rng.randint(3, 8)):
        w, h = rng.randint(1, 6), rng.randint(1, 6)
        x = rng.randint(1, SIZE - w - 1)
        y = rng.randint(1, SIZE - h - 1)
        plane.block_rect(Rect(x, y, w, h))
    free = [
        Point(x, y)
        for x in range(SIZE + 1)
        for y in range(SIZE + 1)
        if not plane.occupied(Point(x, y))
    ]
    start = rng.choice(free)
    goal = rng.choice(free)
    return plane, start, goal


def test_router_comparison(benchmark, experiment_store):
    rng = random.Random(42)
    mazes = [_random_maze(rng) for _ in range(MAZES)]

    def run():
        totals = {
            name: {"found": 0, "bends": 0, "length": 0, "states": 0}
            for name in ("line_expansion", "lee", "hightower")
        }
        routers = {
            "line_expansion": route_connection,
            "lee": route_lee,
            "hightower": route_hightower,
        }
        solvable = 0
        for plane, start, goal in mazes:
            results = {}
            for name, router in routers.items():
                stats = SearchStats()
                results[name] = router(
                    plane, "n", start, list(Direction), [goal], stats=stats
                )
                totals[name]["states"] += stats.states_expanded
            if results["line_expansion"] is not None:
                solvable += 1
            for name, r in results.items():
                if r is not None:
                    totals[name]["found"] += 1
                    totals[name]["bends"] += r.bends
                    totals[name]["length"] += r.length
            # Exhaustive routers agree on solvability.
            assert (results["line_expansion"] is None) == (results["lee"] is None)
            if results["line_expansion"] is not None and results["lee"] is not None:
                assert results["lee"].length <= results["line_expansion"].length
                assert (
                    results["line_expansion"].bends <= results["lee"].bends
                )
            if results["hightower"] is not None:
                # Hightower can only find what exists.
                assert results["line_expansion"] is not None
        return totals, solvable

    totals, solvable = once(benchmark, run)
    rows = [
        {
            "router": name,
            "found": f'{t["found"]}/{solvable}',
            "total_bends": t["bends"],
            "total_length": t["length"],
            "states_expanded": t["states"],
        }
        for name, t in totals.items()
    ]
    print_table(f"Router comparison on {MAZES} random mazes", rows)
    experiment_store["abl_routers"] = {r["router"]: r for r in rows}

    exp, lee, ht = (
        totals["line_expansion"],
        totals["lee"],
        totals["hightower"],
    )
    assert exp["found"] == lee["found"] == solvable  # guaranteed solution
    assert ht["found"] <= solvable  # no guarantee
    assert exp["bends"] <= lee["bends"]  # min-bend objective
    assert lee["length"] <= exp["length"]  # min-length objective
    assert ht["states"] < exp["states"]  # the line probes are cheap
