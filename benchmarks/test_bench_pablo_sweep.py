"""Ablation: the PABLO -p / -b option space (sections 4.6, chapter 7).

"Because the issue of esthetics is very subjective, the size of the
partitions and the length of the strings is user controlled ... several
schematic diagrams of the same network may be examined by changing the
sizes."  This bench examines them all: a full sweep of partition and box
size over example 2, with the chapter-6 trend asserted — turning on
strings (box size > 1) buys bends, the paper's primary readability
metric, across the partition sizes that allow strings at all.
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import generate
from repro.core.metrics import diagram_metrics
from repro.core.validate import check_diagram
from repro.place.pablo import PabloOptions
from repro.route.ripup import reroute_failed
from repro.workloads.examples import example2_controller

PARTITION_SIZES = [1, 3, 5, 7, 16]
BOX_SIZES = [1, 3, 5]


def test_pablo_option_sweep(benchmark, experiment_store):
    def run():
        rows = []
        for p in PARTITION_SIZES:
            for b in BOX_SIZES:
                if b > p:
                    continue  # strings cannot exceed their partition
                result = generate(
                    example2_controller(),
                    PabloOptions(partition_size=p, box_size=b),
                )
                if result.metrics.nets_failed:
                    # The densest configurations can leave a net walled in
                    # by earlier wires; the rip-up pass (the paper's
                    # "adjusting some nets by hand") completes them.
                    reroute_failed(result.diagram)
                    result.metrics = diagram_metrics(result.diagram)
                check_diagram(result.diagram)
                rows.append(
                    {
                        "p": p,
                        "b": b,
                        "partitions": result.placement.partition_count,
                        "boxes": result.placement.box_count,
                        "routed": f"{result.metrics.nets_routed}/{result.metrics.nets_total}",
                        "failed": result.metrics.nets_failed,
                        "length": result.metrics.length,
                        "bends": result.metrics.bends,
                        "crossovers": result.metrics.crossovers,
                        "area": result.diagram.bounding_box(
                            include_routes=False
                        ).area,
                    }
                )
        return rows

    rows = once(benchmark, run)
    print_table("PABLO option sweep on example 2 (16 modules / 24 nets)", rows)
    experiment_store["abl_pablo_sweep"] = rows

    # Every configuration ends fully routed (rip-up included).
    assert all(r["failed"] == 0 for r in rows)
    # More partition room means fewer partitions, monotonically.
    for b in BOX_SIZES:
        counts = [r["partitions"] for r in rows if r["b"] == b]
        assert counts == sorted(counts, reverse=True)
    # The chapter 6 trend: strings (b>1) reduce bends versus no strings,
    # aggregated over the partition sizes that support both.
    comparable = [p for p in PARTITION_SIZES if p >= 3]
    bends_no_strings = sum(
        r["bends"] for r in rows if r["b"] == 1 and r["p"] in comparable
    )
    bends_strings = sum(
        r["bends"] for r in rows if r["b"] == 5 and r["p"] in comparable
    )
    assert bends_strings < bends_no_strings
