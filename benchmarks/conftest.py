"""Shared benchmark infrastructure.

Heavy experiment results (the LIFE figures take minutes, as they did on
the paper's HP9000) are computed once per session inside their benchmark
timer and stashed in ``experiment_store`` so the Table 6.1 bench can print
the sweep without re-running everything.  Rendered figures land in
``out/figures``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).resolve().parent.parent / "out"
FIGURES_DIR = OUT_DIR / "figures"


@pytest.fixture(scope="session")
def experiment_store() -> dict:
    """Session-wide store: experiment id -> result summary dict."""
    return {}


@pytest.fixture(scope="session")
def figures_dir() -> Path:
    FIGURES_DIR.mkdir(parents=True, exist_ok=True)
    return FIGURES_DIR


def once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title: str, rows: list[dict]) -> None:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        print(f"\n{title}: (no rows)")
        return
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(str(r[h])) for r in rows)) for h in headers
    }
    print(f"\n{title}")
    print("  " + "  ".join(h.ljust(widths[h]) for h in headers))
    for row in rows:
        print("  " + "  ".join(str(row[h]).ljust(widths[h]) for h in headers))
