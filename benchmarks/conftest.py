"""Shared benchmark infrastructure.

Heavy experiment results (the LIFE figures take minutes, as they did on
the paper's HP9000) are computed once per session inside their benchmark
timer and stashed in ``experiment_store`` so the Table 6.1 bench can print
the sweep without re-running everything.  Rendered figures land in
``out/figures``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.obs.runlog import DEFAULT_RUNLOG, RunLog

OUT_DIR = Path(__file__).resolve().parent.parent / "out"
FIGURES_DIR = OUT_DIR / "figures"


@pytest.fixture(scope="session")
def experiment_store():
    """Session-wide store: experiment id -> result summary dict.

    At session end every experiment lands in the run registry as a
    ``kind="bench"`` record (``ARTWORK_RUNLOG`` overrides the path), so
    ``artwork-inspect``/``regress`` see benchmark history alongside CLI
    runs.
    """
    store: dict = {}
    yield store
    if not store:
        return
    runlog = RunLog(os.environ.get("ARTWORK_RUNLOG", str(DEFAULT_RUNLOG)))
    for experiment, summary in store.items():
        if not isinstance(summary, dict):
            continue
        metrics = {
            k: v
            for k, v in summary.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        # Registry rows must stay small: keep scalar context only (some
        # stores stash whole rendered artifacts alongside the numbers).
        extra = {
            k: v
            for k, v in summary.items()
            if k not in metrics
            and isinstance(v, (str, bool))
            and (not isinstance(v, str) or len(v) <= 200)
        }
        runlog.record(
            kind="bench",
            name=str(experiment),
            wall_seconds=float(metrics.get("seconds", metrics.get("wall_s", 0.0))),
            metrics=metrics,
            extra=extra,
        )


@pytest.fixture(scope="session")
def figures_dir() -> Path:
    FIGURES_DIR.mkdir(parents=True, exist_ok=True)
    return FIGURES_DIR


def once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title: str, rows: list[dict]) -> None:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        print(f"\n{title}: (no rows)")
        return
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(str(r[h])) for r in rows)) for h in headers
    }
    print(f"\n{title}")
    print("  " + "  ".join(h.ljust(widths[h]) for h in headers))
    for row in rows:
        print("  " + "  ".join(str(row[h]).ljust(widths[h]) for h in headers))
