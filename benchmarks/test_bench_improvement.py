"""Ablation: iterative placement improvement (section 4.2.1).

The paper rejects the pairwise-exchange improvement class because "a
diagram should be produced in no time" and greedy wire-length moves get
stuck in local minima.  This bench quantifies the trade-off on the
class's home turf — a scrambled slot placement of uniform modules, where
every pair is exchangeable: the pass recovers a lot of wire length, but
costs far more time than constructive placement, and a constructive
PABLO placement needs no improvement at all.
"""

from __future__ import annotations

import random

from conftest import once, print_table

from repro.core.diagram import Diagram
from repro.core.generator import route_placed
from repro.core.geometry import Point
from repro.core.netlist import Network
from repro.place.improvement import improve_placement
from repro.place.pablo import PabloOptions, place_network
from repro.place.terminal_place import place_terminals
from repro.route.eureka import RouterOptions
from repro.workloads.examples import example2_controller
from repro.workloads.stdlib import instantiate

ROUTER = RouterOptions(margin=6)
GRID = 4  # 4x4 slots
PITCH = 8


def _uniform_network(seed: int) -> Network:
    """16 identical gates with chain + random nets: fully exchangeable."""
    rng = random.Random(seed)
    net = Network(name=f"uniform{seed}")
    n = GRID * GRID
    for i in range(n):
        net.add_module(instantiate("mux2", f"g{i}"))
    for i in range(n - 1):
        net.connect(f"c{i}", f"g{i}.y", f"g{i + 1}.a")
    for j in range(8):
        a, b = rng.sample(range(n), 2)
        net.connect(f"x{j}", f"g{a}.y" if a < b else f"g{b}.y", f"g{max(a, b)}.b")
    return net


def _scrambled_placement(net: Network, seed: int) -> Diagram:
    rng = random.Random(seed + 1000)
    slots = [(c, r) for c in range(GRID) for r in range(GRID)]
    rng.shuffle(slots)
    d = Diagram(net)
    for (c, r), name in zip(slots, sorted(net.modules)):
        d.place_module(name, Point(c * PITCH, r * PITCH))
    place_terminals(d)
    return d


def test_improvement_tradeoff(benchmark, experiment_store):
    def run():
        rows = []
        for seed in (41, 42, 43):
            net = _uniform_network(seed)
            scrambled = _scrambled_placement(net, seed)
            improved = scrambled.copy_placement()
            imp = improve_placement(improved)

            routed_base = route_placed(scrambled.copy_placement(), ROUTER)
            routed_imp = route_placed(improved, ROUTER)
            rows.append(
                {
                    "network": f"uniform{seed}",
                    "hpwl_before": imp.initial_cost,
                    "hpwl_after": imp.final_cost,
                    "gain": f"{imp.gain:.0%}",
                    "swaps": imp.swaps,
                    "improve_s": round(imp.seconds, 3),
                    "bends_base": routed_base.metrics.bends,
                    "bends_improved": routed_imp.metrics.bends,
                    "len_base": routed_base.metrics.length,
                    "len_improved": routed_imp.metrics.length,
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        "Iterative improvement on scrambled placements (section 4.2.1)", rows
    )
    experiment_store["abl_improvement"] = rows

    assert all(r["hpwl_after"] <= r["hpwl_before"] for r in rows)
    assert all(r["swaps"] > 0 for r in rows)  # there was real work
    # The model objective improves a lot on garbage input...
    assert sum(r["hpwl_after"] for r in rows) < 0.8 * sum(
        r["hpwl_before"] for r in rows
    )
    # ...and the routed wire length follows it.
    assert sum(r["len_improved"] for r in rows) < sum(r["len_base"] for r in rows)


def test_constructive_placement_needs_no_improvement(benchmark):
    """The paper's point: PABLO's constructive result is already at (or
    near) the exchange algorithm's local minimum — the greedy pass spends
    its trials to find (almost) nothing."""

    def run():
        net = example2_controller()
        diagram, report = place_network(net, PabloOptions(partition_size=5, box_size=3))
        imp = improve_placement(diagram)
        return report, imp

    report, imp = once(benchmark, run)
    print(
        f"\nPABLO placement {report.seconds * 1000:.0f} ms, improvement pass "
        f"{imp.seconds * 1000:.0f} ms over {imp.trials} trials for "
        f"{imp.swaps} swap(s), gain {imp.gain:.1%}"
    )
    assert imp.gain <= 0.05  # nothing substantial left to find


def test_improvement_converges(benchmark):
    """Greediness terminates: a second run finds nothing to do."""

    def run():
        net = _uniform_network(7)
        diagram = _scrambled_placement(net, 7)
        first = improve_placement(diagram)
        second = improve_placement(diagram)
        return first, second

    first, second = once(benchmark, run)
    assert first.swaps > 0
    assert second.swaps == 0
    assert second.final_cost == first.final_cost
