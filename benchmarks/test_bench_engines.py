"""Ablation: the two line-expansion engines.

``state`` is the exhaustive lexicographic search, ``intervals`` is the
paper's literal segment-sweep algorithm (sections 5.5.2/5.6.3).  They are
bend-equivalent by construction; the interval engine's crossover
minimisation is wave-local (the paper's UPDATE_SOLUTION), so it may trade
crossovers for nothing — this bench quantifies that and the speed
difference on the paper's workloads.
"""

from __future__ import annotations

from conftest import once, print_table

from repro.core.generator import generate, route_placed
from repro.core.validate import check_diagram
from repro.place.pablo import PabloOptions
from repro.route.eureka import RouterOptions
from repro.workloads.examples import example2_controller
from repro.workloads.life import hand_placement
from repro.workloads.random_nets import random_network


def _scenarios():
    yield "example2", lambda opts: generate(
        example2_controller(), PabloOptions(partition_size=5), opts
    )
    for seed in (51, 52):
        yield f"random{seed}", (
            lambda opts, s=seed: generate(
                random_network(modules=12, extra_nets=6, seed=s),
                PabloOptions(partition_size=4, box_size=3),
                opts,
            )
        )
    yield "life(pitch 18)", lambda opts: route_placed(
        hand_placement(pitch=18),
        RouterOptions(margin=10, retry_failed=False, engine=opts.engine),
    )


def test_engine_comparison(benchmark, experiment_store):
    def run():
        rows = []
        for name, runner in _scenarios():
            per_engine = {}
            for engine in ("state", "intervals"):
                result = runner(RouterOptions(engine=engine))
                check_diagram(result.diagram)
                per_engine[engine] = result
            s, i = per_engine["state"], per_engine["intervals"]
            rows.append(
                {
                    "scenario": name,
                    "routed_state": f"{s.metrics.nets_routed}/{s.metrics.nets_total}",
                    "routed_intervals": f"{i.metrics.nets_routed}/{i.metrics.nets_total}",
                    "bends_state": s.metrics.bends,
                    "bends_intervals": i.metrics.bends,
                    "cross_state": s.metrics.crossovers,
                    "cross_intervals": i.metrics.crossovers,
                    "route_s_state": round(s.routing.seconds, 2),
                    "route_s_intervals": round(i.routing.seconds, 2),
                }
            )
        return rows

    rows = once(benchmark, run)
    print_table("Line-expansion engines: state search vs interval sweep", rows)
    experiment_store["abl_engines"] = rows

    # Per-connection bends are provably equal; whole-diagram bends may
    # drift a little because different tie-breaks change the obstacle
    # field seen by later nets.  Crossover counts favour the state engine.
    total_bends_state = sum(r["bends_state"] for r in rows)
    total_bends_intervals = sum(r["bends_intervals"] for r in rows)
    assert abs(total_bends_state - total_bends_intervals) <= 0.25 * max(
        total_bends_state, total_bends_intervals
    )
    assert sum(r["cross_state"] for r in rows) <= sum(
        r["cross_intervals"] for r in rows
    )
